(* Checkpoint/resume of the exploration frontier.

   The contract under test (the wire-format contract of the future
   distributed mode): interrupting an exploration at ANY cut point, on any
   worker count, and resuming from the written checkpoint reaches exactly
   the same canonical report as the uninterrupted exploration — same
   interleaving count, same findings with the same canonical reproduction
   schedules, same bounded-epoch and wildcard counts. *)

module Explorer = Dampi.Explorer
module Report = Dampi.Report
module State = Dampi.State
module Checkpoint = Dampi.Checkpoint
module Decisions = Dampi.Decisions

(* ---- serialization round-trip ---- *)

let sample_decision i =
  {
    Decisions.owner = i mod 5;
    epoch_id = 3 * i;
    src = (i + 1) mod 5;
    kind = (if i mod 2 = 0 then Dampi.Epoch.Wildcard_recv else Dampi.Epoch.Wildcard_probe);
  }

let sample_checkpoint =
  let d = sample_decision in
  {
    Checkpoint.label = "dampi adlb np=6 clock=lamport k=0 dual=false";
    np = 6;
    complete = false;
    runs = 37;
    runs_cancelled = 2;
    runs_timed_out = 3;
    runs_retried = 4;
    runs_crashed = 1;
    monitor_alerts = 5;
    bounded_epochs = 11;
    wildcards_analyzed = 13;
    first_run_makespan = 0.12345678901234567;
    total_virtual_time = 1.9876543210987654e-3;
    findings =
      [
        {
          Report.error = Report.Deadlock { blocked = [ (0, "recv from 1, tag any"); (1, "collective barrier on dup(world)") ] };
          run_index = 3;
          schedule = [ d 1; d 2 ];
        };
        {
          Report.error = Report.Crash { pid = 2; message = "Failure(\"bug: got 33 — unexpected\")" };
          run_index = 5;
          schedule = [ d 3 ];
        };
        {
          Report.error = Report.Comm_leak { pid = 1; labels = [ "dup(world)(ctx=7)"; "split:0(ctx=9)" ] };
          run_index = 0;
          schedule = [];
        };
        {
          Report.error = Report.Request_leak { pid = 4; count = 2 };
          run_index = 1;
          schedule = [ d 4 ];
        };
        {
          Report.error = Report.Monitor_alert { pid = 0; epoch_id = 6; op = "send to 2" };
          run_index = 2;
          schedule = [ d 5; d 6 ];
        };
        {
          Report.error = Report.Replay_divergence { count = 1 };
          run_index = 4;
          schedule = [ d 7 ];
        };
      ];
    completed = [ "-"; Checkpoint.schedule_key [ sample_decision 1 ] ];
    frontier =
      [
        { Checkpoint.prefix = []; choice = d 1; sleep = [] };
        {
          Checkpoint.prefix = [ d 1; d 2 ];
          choice = d 3;
          sleep =
            [
              {
                Dampi.Epoch.s_owner = 2;
                s_id = 9;
                s_kind = Dampi.Epoch.Wildcard_recv;
                s_ctx = 0;
                s_tag = 7;
                s_matched = 1;
                s_alternatives = [ 3; 4 ];
                s_expandable = true;
              };
            ];
        };
      ];
    epoch = 4;
    pruned = 6;
  }

let test_roundtrip () =
  let text = Checkpoint.to_string sample_checkpoint in
  match Checkpoint.of_string text with
  | Error e -> Alcotest.failf "re-parse failed: %s" e
  | Ok c ->
      Alcotest.(check bool)
        "structurally identical after a round trip" true
        (c = sample_checkpoint);
      (* floats survive exactly (hex serialization) *)
      Alcotest.(check bool)
        "exact float round trip" true
        (c.Checkpoint.first_run_makespan
         = sample_checkpoint.Checkpoint.first_run_makespan
        && c.Checkpoint.total_virtual_time
           = sample_checkpoint.Checkpoint.total_virtual_time)

(* The line-oriented format's worst enemies: findings whose free text
   carries newlines, tabs, pipes, the field separators themselves, raw
   percent signs, CRLF, and non-ASCII. Percent-encoding must keep every
   serialized line a single line and round-trip the text byte-exactly —
   this is also the distributed wire's framing safety, which reuses these
   encodings verbatim. *)
let test_hostile_text_roundtrip () =
  let d = sample_decision in
  let hostile =
    [
      "line one\nline two";
      "tab\there and trailing\t";
      "pipe | in | the middle";
      "percent%25 raw% and %0A";
      "crlf\r\nand a ; semicolon";
      "unicode \xe2\x80\x94 d\xc3\xa9j\xc3\xa0 vu";
      "";
    ]
  in
  let findings =
    List.mapi
      (fun i text ->
        let error =
          match i mod 4 with
          | 0 -> Report.Crash { pid = i; message = text }
          | 1 -> Report.Deadlock { blocked = [ (i, text); (i + 1, "plain") ] }
          | 2 -> Report.Comm_leak { pid = i; labels = [ text; "ctx=1" ] }
          | _ -> Report.Monitor_alert { pid = i; epoch_id = i; op = text }
        in
        { Report.error; run_index = i; schedule = [ d i ] })
      hostile
  in
  let ck =
    {
      sample_checkpoint with
      Checkpoint.findings;
      label = "hostile\nlabel | with\ttabs and %";
    }
  in
  let text = Checkpoint.to_string ck in
  (* Framing safety first: no payload may smuggle a raw control character
     into the line structure. *)
  String.iter
    (fun c ->
      if c = '\r' then Alcotest.fail "raw CR leaked into the serialized form")
    text;
  match Checkpoint.of_string text with
  | Error e -> Alcotest.failf "re-parse failed: %s" e
  | Ok c ->
      Alcotest.(check bool)
        "hostile text survives byte-exactly" true (c = ck)

let test_save_load () =
  let path = Filename.temp_file "dampi_ck" ".dampi" in
  (match Checkpoint.save sample_checkpoint path with
  | Checkpoint.Written -> ()
  | Checkpoint.Degraded msg -> Alcotest.failf "save degraded: %s" msg);
  Alcotest.(check bool)
    "no temp file left behind" false
    (Sys.file_exists (path ^ ".tmp"));
  (match Checkpoint.load path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok c ->
      Alcotest.(check bool) "load = save" true (c = sample_checkpoint));
  Sys.remove path

let test_load_errors () =
  let expect_error text fragment =
    match Checkpoint.of_string text with
    | Ok _ -> Alcotest.failf "expected %S to be rejected" fragment
    | Error e ->
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "error mentions %S (got %S)" fragment e)
          true (contains e fragment)
  in
  expect_error "garbage\n" "not a DAMPI checkpoint";
  expect_error "# DAMPI checkpoint\nversion 99\n" "version 99";
  expect_error "# DAMPI checkpoint\nruns 3\n" "version";
  match Checkpoint.load "/nonexistent/path/x.dampi" with
  | Ok _ -> Alcotest.fail "loading a missing file should fail"
  | Error _ -> ()

(* ---- interrupted exploration resumes to the uninterrupted report ---- *)

let signatures (r : Report.t) =
  List.map
    (fun (f : Report.finding) -> Report.error_signature f.Report.error)
    r.Report.findings
  |> List.sort_uniq compare

let canonical (r : Report.t) =
  ( r.Report.interleavings,
    signatures r,
    List.map
      (fun (f : Report.finding) ->
        Format.asprintf "%a" Report.pp_finding
          { f with Report.run_index = 0 })
      r.Report.findings,
    r.Report.bounded_epochs,
    r.Report.wildcards_analyzed )

let registry =
  let k0 = State.make_config ~mixing_bound:0 () in
  [
    ("fig3", 3, State.default_config, fun () -> Workloads.Patterns.fig3);
    ("adlb/k0", 6, k0, fun () -> Workloads.Adlb.program ());
  ]

let config ~state_config ~jobs ~robustness =
  { Explorer.default_config with state_config; jobs; robustness }

let with_temp_checkpoint f =
  let path = Filename.temp_file "dampi_ck" ".dampi" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* Interrupt deterministically after [cut] completed replays (the test
   stand-in for SIGTERM: it raises the same flag the signal handler sets),
   then resume from the checkpoint and compare against the baseline. *)
let check_cut ~name ~np ~state_config ~build ~jobs ~cut baseline =
  with_temp_checkpoint @@ fun path ->
  let ck = { Explorer.path; every = 0; label = name } in
  let interrupted =
    Explorer.verify
      ~config:
        (config ~state_config ~jobs
           ~robustness:
             {
               Explorer.default_robustness with
               checkpoint = Some ck;
               interrupt_after = Some cut;
             })
      ~np (build ())
  in
  if interrupted.Report.interrupted then begin
    Alcotest.(check bool)
      (Printf.sprintf "%s: checkpoint written at cut %d" name cut)
      true (Sys.file_exists path);
    let resumed =
      match Checkpoint.load path with
      | Error e -> Alcotest.failf "%s: reload at cut %d: %s" name cut e
      | Ok c ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: cut %d not marked complete" name cut)
            false c.Checkpoint.complete;
          Explorer.verify
            ~config:
              (config ~state_config ~jobs
                 ~robustness:
                   {
                     Explorer.default_robustness with
                     checkpoint = Some ck;
                   })
            ~resume:c ~np (build ())
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s: resumed report = uninterrupted (cut %d, jobs %d)"
         name cut jobs)
      true
      (canonical resumed = baseline)
  end
  else
    (* The exploration finished before the cut (small space): it must then
       simply equal the baseline. *)
    Alcotest.(check bool)
      (Printf.sprintf "%s: uninterrupted (cut %d beyond space)" name cut)
      true
      (canonical interrupted = baseline)

let test_resume_equivalence (name, np, state_config, build) () =
  let baseline =
    canonical
      (Explorer.verify
         ~config:
           (config ~state_config ~jobs:1
              ~robustness:Explorer.default_robustness)
         ~np (build ()))
  in
  List.iter
    (fun jobs ->
      List.iter
        (fun cut ->
          check_cut ~name ~np ~state_config ~build ~jobs ~cut baseline)
        [ 1; 2; 7; 23 ])
    [ 1; 4 ]

(* Interrupt repeatedly — every ~8 replays — resuming each time from the
   previous checkpoint, until the exploration completes. The chain of
   partial explorations must still land on the baseline. *)
let test_chained_resume () =
  let np = 6 in
  let state_config = State.make_config ~mixing_bound:0 () in
  let build () = Workloads.Adlb.program () in
  let baseline =
    canonical
      (Explorer.verify
         ~config:
           (config ~state_config ~jobs:1
              ~robustness:Explorer.default_robustness)
         ~np (build ()))
  in
  with_temp_checkpoint @@ fun path ->
  let ck = { Explorer.path; every = 3; label = "chain" } in
  let rec go ~resume ~limit ~hops =
    if hops > 40 then Alcotest.fail "resume chain does not converge";
    let report =
      Explorer.verify
        ~config:
          (config ~state_config ~jobs:4
             ~robustness:
               {
                 Explorer.default_robustness with
                 checkpoint = Some ck;
                 interrupt_after = Some limit;
               })
        ?resume ~np (build ())
    in
    if report.Report.interrupted then
      match Checkpoint.load path with
      | Error e -> Alcotest.failf "hop %d: reload: %s" hops e
      | Ok c -> go ~resume:(Some c) ~limit:(limit + 8) ~hops:(hops + 1)
    else (report, hops)
  in
  let final, hops = go ~resume:None ~limit:8 ~hops:0 in
  Alcotest.(check bool) "took several hops" true (hops >= 2);
  Alcotest.(check bool)
    "chained resume lands on the uninterrupted report" true
    (canonical final = baseline)

(* Resuming a completed checkpoint re-reports without re-running anything. *)
let test_resume_complete () =
  let np = 3 in
  with_temp_checkpoint @@ fun path ->
  let ck = { Explorer.path; every = 0; label = "fig3" } in
  let robustness =
    { Explorer.default_robustness with checkpoint = Some ck }
  in
  let first =
    Explorer.verify
      ~config:(config ~state_config:State.default_config ~jobs:1 ~robustness)
      ~np Workloads.Patterns.fig3
  in
  let c =
    match Checkpoint.load path with
    | Ok c -> c
    | Error e -> Alcotest.failf "load: %s" e
  in
  Alcotest.(check bool) "marked complete" true c.Checkpoint.complete;
  let again =
    Explorer.verify
      ~config:(config ~state_config:State.default_config ~jobs:1 ~robustness)
      ~resume:c ~np Workloads.Patterns.fig3
  in
  Alcotest.(check bool)
    "same canonical report" true
    (canonical again = canonical first);
  let executed (r : Report.t) =
    List.fold_left
      (fun acc (w : Report.worker_stat) -> acc + w.Report.runs_executed)
      0 r.Report.workers
  in
  Alcotest.(check int) "no replay re-executed" 0 (executed again)

let () =
  Alcotest.run "checkpoint"
    [
      ( "format",
        [
          Alcotest.test_case "round trip" `Quick test_roundtrip;
          Alcotest.test_case "hostile text round trip" `Quick
            test_hostile_text_roundtrip;
          Alcotest.test_case "atomic save/load" `Quick test_save_load;
          Alcotest.test_case "load errors" `Quick test_load_errors;
        ] );
      ( "resume",
        List.map
          (fun ((name, _, _, _) as case) ->
            Alcotest.test_case name `Quick (test_resume_equivalence case))
          registry
        @ [
            Alcotest.test_case "chained resume (jobs=4)" `Quick
              test_chained_resume;
            Alcotest.test_case "complete checkpoint" `Quick
              test_resume_complete;
          ] );
    ]
