(* The serve daemon's acceptance bar, exercised against a genuinely
   forked daemon process over a real unix socket:

   - differential: concurrent jobs produce byte-identical reports to a
     standalone in-process verification of the same configuration, even
     while a sibling job crashes (fork-per-job isolation);
   - admission: queue and per-client caps answer with one-line rejects
     and the daemon keeps serving; rejects are counted;
   - lifecycle: a vanished client cancels its running job (policy
     cancel) or lets it finish and park (policy detach + fetch, consumed
     exactly once);
   - robustness: seeded random garbage lines and an over-cap
     unterminated flood never terminate the daemon;
   - drain/recovery: SIGTERM with queued and running work exits 0 with
     every admitted job journaled; a restarted daemon on the same state
     dir completes each exactly once. *)

module Explorer = Dampi.Explorer
module Report = Dampi.Report
module Serve = Dampi.Serve
module Wire = Dampi.Wire
module Checkpoint = Dampi.Checkpoint

(* ---- the daemon's workload registry for these tests ---- *)

let workload = function
  | "fig3" -> Some (3, fun () -> Workloads.Patterns.fig3)
  | "fig4" -> Some (4, fun () -> Workloads.Patterns.fig4)
  | _ -> None

let known = [ "fig3"; "fig4"; "boom"; "slow"; "park" ]

let test_validate params =
  match List.assoc_opt "workload" params with
  | None -> Error "submit needs workload=<key>"
  | Some w ->
      if List.mem w known then Ok ("test " ^ w)
      else Error (Printf.sprintf "unknown workload %S" w)

(* Deterministic render shared by the daemon child and the standalone
   differential below: counts and sorted signatures, no wall times. *)
let render name (r : Report.t) =
  let sigs =
    List.map
      (fun (f : Report.finding) -> Report.error_signature f.Report.error)
      r.Report.findings
    |> List.sort_uniq compare
  in
  Printf.sprintf "%s: %d interleavings, findings [%s]\n" name
    r.Report.interleavings (String.concat "; " sigs)

let explore name =
  match workload name with
  | None -> Alcotest.failf "no such exploratory workload %s" name
  | Some (np, build) ->
      Explorer.verify ~config:Explorer.default_config ~np (build ())

(* Runs inside the daemon's forked job child. *)
let test_run ~ckpt ~label:_ ~params ~progress =
  match Option.value (List.assoc_opt "workload" params) ~default:"" with
  | "boom" -> failwith "boom exploded"
  | "slow" ->
      progress [ ("phase", "sleep") ];
      Unix.sleepf 1.2;
      Serve.Completed { report = "slow done\n"; code = 0 }
  | "park" ->
      if Sys.file_exists ckpt then
        Serve.Completed { report = "parked done\n"; code = 0 }
      else begin
        ignore (Checkpoint.atomic_write ckpt "armed");
        let hit = ref false in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> hit := true));
        progress [ ("phase", "armed") ];
        let deadline = Unix.gettimeofday () +. 10. in
        while (not !hit) && Unix.gettimeofday () < deadline do
          try Unix.sleepf 0.05
          with Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done;
        if !hit then Serve.Checkpointed
        else Serve.Completed { report = "park timed out\n"; code = 1 }
      end
  | name ->
      let report = explore name in
      Serve.Completed
        {
          report = render name report;
          code = (if Report.has_errors report then 1 else 0);
        }

(* ---- harness plumbing ---- *)

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dampi-serve-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let metrics_file state_dir = Filename.concat state_dir "metrics.json"

let start_daemon ?(limits = Serve.default_limits) ~state_dir () =
  let sock = Filename.concat state_dir "serve.sock" in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let registry = Obs.Metrics.create ~shards:1 () in
      let code =
        match
          Serve.serve
            {
              Serve.addr = Wire.Unix_sock sock;
              state_dir;
              limits;
              validate = test_validate;
              run = test_run;
              metrics = Some (Obs.Metrics.shard registry 0);
              ready = None;
            }
        with
        | Ok c ->
            (* parent asserts on this snapshot after waitpid *)
            ignore
              (Checkpoint.atomic_write (metrics_file state_dir)
                 (Obs.Metrics.to_json (Obs.Metrics.snapshot registry)));
            c
        | Error msg ->
            ignore
              (Checkpoint.atomic_write
                 (Filename.concat state_dir "daemon-error")
                 msg);
            1
      in
      Unix._exit code
  | pid -> (pid, sock)

let stop_daemon pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED sg -> Alcotest.failf "daemon killed by signal %d" sg
  | Unix.WSTOPPED _ -> Alcotest.fail "daemon stopped"

type conn = { ic : in_channel; oc : out_channel }

let connect sock =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () -> { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error _ ->
        Unix.close fd;
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "daemon socket never came up";
        Unix.sleepf 0.05;
        go ()
  in
  go ()

let disconnect c = try close_out c.oc with Sys_error _ -> ()

let send c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let submit c ?(on_disconnect = Serve.Cancel) params =
  send c (Serve.submit_line ~params ~on_disconnect)

let event c =
  match Serve.read_event c.ic with
  | Ok e -> e
  | Error e -> Alcotest.failf "protocol error: %s" e

let expect_accepted c =
  match event c with
  | Serve.Accepted id -> id
  | _ -> Alcotest.fail "expected accepted"

(* Read to the job's terminal frame, collecting progress and report. *)
type finished = {
  progress_seen : int;
  report : string list;
  status : string;
  code : int;
  msg : string;
  backtrace : string;
}

let await_done c =
  let progress_seen = ref 0 and report = ref [] in
  let rec go () =
    match event c with
    | Serve.Progress _ ->
        incr progress_seen;
        go ()
    | Serve.Report (_, lines) ->
        report := lines;
        go ()
    | Serve.Done { status; code; msg; backtrace; _ } ->
        {
          progress_seen = !progress_seen;
          report = !report;
          status;
          code;
          msg;
          backtrace;
        }
    | Serve.Accepted _ | Serve.Pending _ -> go ()
    | Serve.Rejected r -> Alcotest.failf "unexpected reject %s" r
    | Serve.Errored { reason; _ } -> Alcotest.failf "unexpected error %s" reason
  in
  go ()

let await_progress c =
  let rec go () =
    match event c with
    | Serve.Progress _ -> ()
    | Serve.Accepted _ -> go ()
    | _ -> Alcotest.fail "expected a progress frame"
  in
  go ()

let report_text f = String.concat "" (List.map (fun l -> l ^ "\n") f.report)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let count_journal_jobs state_dir =
  read_file (Filename.concat state_dir "journal")
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.length l > 4 && String.sub l 0 4 = "job ")
  |> List.length

let metric_count state_dir name =
  (* the snapshot JSON carries ["<name>",<n>] counter pairs; a substring
     probe keeps this free of a JSON parser *)
  let json = read_file (metrics_file state_dir) in
  let needle = Printf.sprintf "\"%s\"" name in
  let rec find i =
    if i + String.length needle > String.length json then None
    else if String.sub json i (String.length needle) = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> 0
  | Some i ->
      let j = ref (i + String.length needle) in
      while
        !j < String.length json
        && not (json.[!j] >= '0' && json.[!j] <= '9')
      do
        incr j
      done;
      let k = ref !j in
      while
        !k < String.length json && json.[!k] >= '0' && json.[!k] <= '9'
      do
        incr k
      done;
      if !k > !j then int_of_string (String.sub json !j (!k - !j)) else 0

(* ---- tests ---- *)

(* Three concurrent jobs, one of which raises: the two sound jobs'
   reports are byte-identical to standalone verification, the crash is
   classified with its message and backtrace, and the daemon serves a
   fourth job afterwards. *)
let test_crash_isolation_differential () =
  let state_dir = fresh_dir () in
  let pid, sock = start_daemon ~state_dir () in
  Fun.protect
    ~finally:(fun () -> ignore (stop_daemon pid))
    (fun () ->
      let c1 = connect sock and c2 = connect sock and c3 = connect sock in
      submit c1 [ ("workload", "fig3") ];
      submit c2 [ ("workload", "boom") ];
      submit c3 [ ("workload", "fig4") ];
      let f1 = await_done c1 in
      let f2 = await_done c2 in
      let f3 = await_done c3 in
      Alcotest.(check string) "fig3 status" "completed" f1.status;
      Alcotest.(check string)
        "fig3 report equals standalone verify"
        (render "fig3" (explore "fig3"))
        (report_text f1);
      Alcotest.(check string)
        "fig4 report equals standalone verify"
        (render "fig4" (explore "fig4"))
        (report_text f3);
      Alcotest.(check string) "boom status" "crashed" f2.status;
      Alcotest.(check bool) "boom message names the exception" true
        (let m = f2.msg in
         let rec mem i =
           i + 4 <= String.length m
           && (String.sub m i 4 = "boom" || mem (i + 1))
         in
         mem 0);
      List.iter disconnect [ c1; c2; c3 ];
      (* the daemon survived the crash: a fresh job still completes *)
      let c4 = connect sock in
      submit c4 [ ("workload", "fig3") ];
      let f4 = await_done c4 in
      Alcotest.(check string) "post-crash job" "completed" f4.status;
      disconnect c4)

(* Queue and per-client caps answer with one-line rejects; a vanished
   client's running job is cancelled; both are visible in the metrics
   snapshot the daemon writes on exit. *)
let test_admission_and_cancel () =
  let state_dir = fresh_dir () in
  let limits =
    { Serve.default_limits with parallel = 1; max_queue = 1;
      max_client_inflight = 1 }
  in
  let pid, sock = start_daemon ~limits ~state_dir () in
  let a = connect sock in
  submit a [ ("workload", "slow") ];
  ignore (expect_accepted a);
  (* the progress frame proves the job left the queue: the caps below
     are then deterministic *)
  await_progress a;
  submit a [ ("workload", "fig3") ];
  (match event a with
  | Serve.Rejected r -> Alcotest.(check string) "client cap" "client-cap" r
  | _ -> Alcotest.fail "expected reject client-cap");
  let b = connect sock in
  submit b [ ("workload", "fig3") ];
  ignore (expect_accepted b);
  let c = connect sock in
  submit c [ ("workload", "fig4") ];
  (match event c with
  | Serve.Rejected r -> Alcotest.(check string) "queue cap" "queue-full" r
  | _ -> Alcotest.fail "expected reject queue-full");
  disconnect c;
  (* drop the slow job's submitter: policy cancel SIGTERMs the child and
     frees the slot for b's queued job *)
  disconnect a;
  let fb = await_done b in
  Alcotest.(check string) "queued job completes after cancel" "completed"
    fb.status;
  disconnect b;
  Alcotest.(check int) "daemon drained" 0 (stop_daemon pid);
  Alcotest.(check bool) "rejects counted" true
    (metric_count state_dir "serve.jobs_rejected" >= 2);
  Alcotest.(check bool) "cancellation counted" true
    (metric_count state_dir "serve.jobs_cancelled" >= 1)

(* Seeded random garbage, bad submits, a bad fetch and an over-cap
   unterminated flood: every line gets a versioned error (or a close for
   the flood), and the daemon still completes a real job afterwards. *)
let test_garbage_never_kills () =
  let state_dir = fresh_dir () in
  let limits = { Serve.default_limits with max_line = 512 } in
  let pid, sock = start_daemon ~limits ~state_dir () in
  Fun.protect
    ~finally:(fun () -> ignore (stop_daemon pid))
    (fun () ->
      let rng = Random.State.make [| 0x5e4e |] in
      let garbage () =
        String.init
          (1 + Random.State.int rng 60)
          (fun _ ->
            (* printable, never '\n' *)
            Char.chr (32 + Random.State.int rng 95))
      in
      let c = connect sock in
      for _ = 1 to 50 do
        send c (garbage ());
        match event c with
        | Serve.Errored { proto; _ } ->
            Alcotest.(check int) "versioned error" Serve.proto proto
        | Serve.Rejected _ -> ()
        | _ -> Alcotest.fail "garbage must answer with an error"
      done;
      send c "submit workload=nope";
      (match event c with
      | Serve.Errored _ -> ()
      | _ -> Alcotest.fail "bad submit must answer with an error");
      send c "fetch zzz";
      (match event c with
      | Serve.Errored _ -> ()
      | _ -> Alcotest.fail "bad fetch must answer with an error");
      (* unterminated flood past the line cap: one error, then close *)
      output_string c.oc (String.make (limits.Serve.max_line + 64) 'x');
      flush c.oc;
      (match Serve.read_event c.ic with
      | Ok (Serve.Errored _) -> ()
      | Ok _ -> Alcotest.fail "flood must answer with an error"
      | Error _ -> () (* already closed: also acceptable *));
      (match Serve.read_event c.ic with
      | Error _ -> () (* connection closed after the overflow error *)
      | Ok _ -> Alcotest.fail "daemon must close a flooding connection");
      disconnect c;
      let c2 = connect sock in
      submit c2 [ ("workload", "fig3") ];
      let f = await_done c2 in
      Alcotest.(check string) "daemon survived the garbage" "completed"
        f.status;
      disconnect c2)

(* Detach: the job outlives its submitter, parks its report, and a later
   fetch consumes it exactly once. *)
let test_detach_and_fetch () =
  let state_dir = fresh_dir () in
  let pid, sock = start_daemon ~state_dir () in
  Fun.protect
    ~finally:(fun () -> ignore (stop_daemon pid))
    (fun () ->
      let a = connect sock in
      submit a ~on_disconnect:Serve.Detach [ ("workload", "slow") ];
      let id = expect_accepted a in
      await_progress a;
      disconnect a;
      let b = connect sock in
      let rec fetch_done () =
        send b (Serve.fetch_line id);
        match event b with
        | Serve.Pending _ ->
            Unix.sleepf 0.1;
            fetch_done ()
        | Serve.Report (_, lines) -> (
            match event b with
            | Serve.Done { status; _ } -> (lines, status)
            | _ -> Alcotest.fail "report without done")
        | Serve.Done { status; _ } -> ([], status)
        | _ -> Alcotest.fail "unexpected fetch answer"
      in
      let lines, status = fetch_done () in
      Alcotest.(check string) "parked status" "completed" status;
      Alcotest.(check (list string)) "parked report" [ "slow done" ] lines;
      send b (Serve.fetch_line id);
      (match event b with
      | Serve.Errored _ -> () (* consumed exactly once *)
      | _ -> Alcotest.fail "second fetch must fail");
      disconnect b)

(* SIGTERM with one running (checkpointable) and one queued job: exit 0,
   both journaled; a restarted daemon on the same state dir completes
   each exactly once and parks their reports. *)
let test_drain_and_recovery () =
  let state_dir = fresh_dir () in
  let limits = { Serve.default_limits with parallel = 1 } in
  let pid, sock = start_daemon ~limits ~state_dir () in
  let a = connect sock in
  submit a ~on_disconnect:Serve.Detach [ ("workload", "park") ];
  let park_id = expect_accepted a in
  await_progress a (* the park job is running and trap-armed *);
  let b = connect sock in
  submit b ~on_disconnect:Serve.Detach [ ("workload", "fig3") ];
  let fig_id = expect_accepted b in
  Unix.kill pid Sys.sigterm;
  (* the queued job's submitter is told its job rides the journal *)
  let fb = await_done b in
  Alcotest.(check string) "queued job checkpointed" "checkpointed" fb.status;
  (match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED 0 -> ()
  | st ->
      Alcotest.failf "drain must exit 0, got %s"
        (match st with
        | Unix.WEXITED n -> Printf.sprintf "exit %d" n
        | Unix.WSIGNALED sg -> Printf.sprintf "signal %d" sg
        | Unix.WSTOPPED _ -> "stop"));
  disconnect a;
  disconnect b;
  Alcotest.(check int) "both jobs journaled" 2 (count_journal_jobs state_dir);
  (* restart on the same state dir: both jobs re-admitted, run detached,
     and park their reports *)
  let pid2, sock2 = start_daemon ~state_dir () in
  Fun.protect
    ~finally:(fun () -> ignore (stop_daemon pid2))
    (fun () ->
      let c = connect sock2 in
      let rec fetch_done id =
        send c (Serve.fetch_line id);
        match event c with
        | Serve.Pending _ ->
            Unix.sleepf 0.1;
            fetch_done id
        | Serve.Errored { reason; _ } ->
            (* between restart and re-admission the id is briefly
               unknown only if recovery dropped it — that is a failure *)
            Alcotest.failf "job %d lost in recovery: %s" id reason
        | Serve.Report (_, lines) -> (
            match event c with
            | Serve.Done { status; _ } -> (lines, status)
            | _ -> Alcotest.fail "report without done")
        | Serve.Done { status; _ } -> ([], status)
        | _ -> Alcotest.fail "unexpected fetch answer"
      in
      let park_lines, park_status = fetch_done park_id in
      Alcotest.(check string) "park resumed to completion" "completed"
        park_status;
      Alcotest.(check (list string)) "park report" [ "parked done" ] park_lines;
      let fig_lines, fig_status = fetch_done fig_id in
      Alcotest.(check string) "fig3 recovered" "completed" fig_status;
      Alcotest.(check string)
        "recovered fig3 report equals standalone verify"
        (render "fig3" (explore "fig3"))
        (String.concat "" (List.map (fun l -> l ^ "\n") fig_lines));
      (* exactly once: the ids are gone now *)
      send c (Serve.fetch_line park_id);
      (match event c with
      | Serve.Errored _ -> ()
      | _ -> Alcotest.fail "re-fetch of a consumed job must fail");
      disconnect c)

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Alcotest.run "serve"
    [
      ( "daemon",
        [
          Alcotest.test_case "crash isolation is differential" `Quick
            test_crash_isolation_differential;
          Alcotest.test_case "admission caps and disconnect-cancel" `Quick
            test_admission_and_cancel;
          Alcotest.test_case "garbage and floods never kill" `Quick
            test_garbage_never_kills;
          Alcotest.test_case "detach, park, fetch-once" `Quick
            test_detach_and_fetch;
          Alcotest.test_case "drain journals, restart recovers" `Quick
            test_drain_and_recovery;
        ] );
    ]
