(* White-box tests of the DAMPI verifier state machine, plus coverage of the
   interposition layer over the wider MPI surface (sendrecv, scan, split
   communicators, probes under guidance). *)

module State = Dampi.State
module Epoch = Dampi.Epoch
module Decisions = Dampi.Decisions
module Explorer = Dampi.Explorer
module Report = Dampi.Report
module Payload = Mpi.Payload
module Types = Mpi.Types

let lamport = (module Clocks.Lamport : Clocks.Clock_intf.S)

let fresh_state ?(np = 4) ?config () =
  State.create ?config ~np ~plan:(Decisions.empty ~np) ~fork_index:(-1) ()

(* ---- State: clocks and epochs ---- *)

let test_record_epoch_ticks () =
  let st = fresh_state () in
  Alcotest.(check int) "scalar starts at 0" 0 (State.scalar st 1);
  let e1 = State.record_epoch st ~me:1 ~kind:Epoch.Wildcard_recv ~ctx:0 ~tag:5 in
  Alcotest.(check int) "epoch id is pre-tick" 0 e1.Epoch.id;
  Alcotest.(check int) "clock ticked" 1 (State.scalar st 1);
  let e2 = State.record_epoch st ~me:1 ~kind:Epoch.Wildcard_recv ~ctx:0 ~tag:5 in
  Alcotest.(check int) "second epoch id" 1 e2.Epoch.id;
  Alcotest.(check int) "other process unaffected" 0 (State.scalar st 2)

let test_merge_in () =
  let st = fresh_state () in
  State.merge_in st 0 [| 7 |];
  Alcotest.(check int) "merge lifts to incoming" 7 (State.scalar st 0);
  State.merge_in st 0 [| 3 |];
  Alcotest.(check int) "merge keeps max" 7 (State.scalar st 0)

let test_find_potential_matches_lateness () =
  let st = fresh_state () in
  (* Epoch at clock 0 (event clock 1). *)
  let e = State.record_epoch st ~me:0 ~kind:Epoch.Wildcard_recv ~ctx:0 ~tag:9 in
  (* A send carrying clock 0 is late (0 < event 1); clock 1 is not. *)
  State.find_potential_matches st ~me:0 ~src_rank:2 ~ctx:0 ~tag:9
    ~send_enc:[| 0 |];
  Alcotest.(check (list int)) "clock-0 send is a potential" [ 2 ]
    (Epoch.alternatives e);
  State.find_potential_matches st ~me:0 ~src_rank:3 ~ctx:0 ~tag:9
    ~send_enc:[| 1 |];
  Alcotest.(check (list int)) "clock-1 send is not" [ 2 ]
    (Epoch.alternatives e)

let test_find_potential_matches_spec () =
  let st = fresh_state () in
  let e = State.record_epoch st ~me:0 ~kind:Epoch.Wildcard_recv ~ctx:1 ~tag:9 in
  (* Wrong context. *)
  State.find_potential_matches st ~me:0 ~src_rank:1 ~ctx:0 ~tag:9
    ~send_enc:[| 0 |];
  (* Wrong tag. *)
  State.find_potential_matches st ~me:0 ~src_rank:2 ~ctx:1 ~tag:8
    ~send_enc:[| 0 |];
  Alcotest.(check (list int)) "spec mismatches filtered" []
    (Epoch.alternatives e);
  (* An any-tag epoch accepts all tags. *)
  let e2 =
    State.record_epoch st ~me:0 ~kind:Epoch.Wildcard_recv ~ctx:1
      ~tag:Types.any_tag
  in
  State.find_potential_matches st ~me:0 ~src_rank:3 ~ctx:1 ~tag:42
    ~send_enc:[| 0 |];
  Alcotest.(check (list int)) "any-tag epoch matched" [ 3 ]
    (Epoch.alternatives e2)

let test_scan_pruning_covers_equal_ids () =
  (* Several epochs; a message with scalar s must be matched against all
     epochs with id >= s and no others (the newest-first prune must not cut
     at equality). *)
  let st = fresh_state () in
  let e0 = State.record_epoch st ~me:0 ~kind:Epoch.Wildcard_recv ~ctx:0 ~tag:1 in
  let e1 = State.record_epoch st ~me:0 ~kind:Epoch.Wildcard_recv ~ctx:0 ~tag:1 in
  let e2 = State.record_epoch st ~me:0 ~kind:Epoch.Wildcard_recv ~ctx:0 ~tag:1 in
  (* ids 0,1,2; send scalar 1: late for ids 1 and 2 (send <= id), not 0. *)
  State.find_potential_matches st ~me:0 ~src_rank:3 ~ctx:0 ~tag:1
    ~send_enc:[| 1 |];
  Alcotest.(check (list int)) "id 0: not late" [] (Epoch.alternatives e0);
  Alcotest.(check (list int)) "id 1: late (equal)" [ 3 ] (Epoch.alternatives e1);
  Alcotest.(check (list int)) "id 2: late" [ 3 ] (Epoch.alternatives e2)

let test_bounded_mixing_window_math () =
  let config = State.make_config ~clock:lamport ~mixing_bound:1 () in
  (* Forked run at global index 2: new epochs complete at indices 3,4,5 —
     only those within fork+k stay expandable. *)
  let plan =
    Decisions.of_decisions ~np:4
      [
        { Decisions.owner = 0; epoch_id = 0; src = 1; kind = Epoch.Wildcard_recv };
        { Decisions.owner = 0; epoch_id = 1; src = 2; kind = Epoch.Wildcard_recv };
        { Decisions.owner = 0; epoch_id = 2; src = 3; kind = Epoch.Wildcard_recv };
      ]
  in
  let st = State.create ~config ~np:4 ~plan ~fork_index:2 () in
  let mk () =
    State.record_epoch st ~me:1 ~kind:Epoch.Wildcard_recv ~ctx:0 ~tag:0
  in
  let e3 = mk () and e4 = mk () and e5 = mk () in
  State.complete_epoch st e3 ~matched_src:0;
  State.complete_epoch st e4 ~matched_src:0;
  State.complete_epoch st e5 ~matched_src:0;
  Alcotest.(check bool) "index 3 within window" true e3.Epoch.expandable;
  Alcotest.(check bool) "index 4 outside" false e4.Epoch.expandable;
  Alcotest.(check bool) "index 5 outside" false e5.Epoch.expandable

let test_initial_run_unbounded () =
  (* On the initial self run (fork = -1) the window never applies. *)
  let config = State.make_config ~clock:lamport ~mixing_bound:0 () in
  let st =
    State.create ~config ~np:2 ~plan:(Decisions.empty ~np:2) ~fork_index:(-1) ()
  in
  let e = State.record_epoch st ~me:0 ~kind:Epoch.Wildcard_recv ~ctx:0 ~tag:0 in
  State.complete_epoch st e ~matched_src:1;
  Alcotest.(check bool) "expandable on initial run" true e.Epoch.expandable

let test_monitor_watch_set () =
  let st = fresh_state () in
  let e = State.record_epoch st ~me:2 ~kind:Epoch.Wildcard_recv ~ctx:0 ~tag:0 in
  State.watch_wildcard st ~req_uid:10 e;
  State.monitor_clock_escape st ~me:2 ~op:"send";
  Alcotest.(check int) "alert raised" 1 (List.length (State.warnings st));
  (* Duplicate suppression per epoch. *)
  State.monitor_clock_escape st ~me:2 ~op:"send";
  Alcotest.(check int) "no duplicate" 1 (List.length (State.warnings st));
  (* Other processes' escapes don't alert for our epoch. *)
  State.monitor_clock_escape st ~me:1 ~op:"send";
  Alcotest.(check int) "other pid quiet" 1 (List.length (State.warnings st));
  State.unwatch_wildcard st ~req_uid:10;
  let e2 = State.record_epoch st ~me:2 ~kind:Epoch.Wildcard_recv ~ctx:0 ~tag:0 in
  State.watch_wildcard st ~req_uid:11 e2;
  State.unwatch_wildcard st ~req_uid:11;
  State.monitor_clock_escape st ~me:2 ~op:"send";
  Alcotest.(check int) "closed wildcard: no alert" 1
    (List.length (State.warnings st))

let test_pcontrol_nesting () =
  let st = fresh_state () in
  Alcotest.(check bool) "initially outside" false (State.in_abstracted_loop st 0);
  State.pcontrol st 0 1;
  State.pcontrol st 0 1;
  Alcotest.(check bool) "nested inside" true (State.in_abstracted_loop st 0);
  State.pcontrol st 0 0;
  Alcotest.(check bool) "still inside after one exit" true
    (State.in_abstracted_loop st 0);
  State.pcontrol st 0 0;
  Alcotest.(check bool) "outside after matching exits" false
    (State.in_abstracted_loop st 0);
  State.pcontrol st 0 0;
  Alcotest.(check bool) "underflow clamps" false (State.in_abstracted_loop st 0)

let test_dual_clock_lag () =
  let config = State.make_config ~clock:lamport ~dual_clock:true () in
  let st = fresh_state ~config () in
  let _ = State.record_epoch st ~me:0 ~kind:Epoch.Wildcard_recv ~ctx:0 ~tag:0 in
  (* The analysis clock ticked; the transmitted clock lags. *)
  Alcotest.(check int) "analysis clock" 1 (State.scalar st 0);
  (match State.clock_payload st 0 with
  | Payload.Ints [| v |] -> Alcotest.(check int) "transmitted clock lags" 0 v
  | _ -> Alcotest.fail "unexpected payload shape");
  State.sync_xmit st 0;
  match State.clock_payload st 0 with
  | Payload.Ints [| v |] ->
      Alcotest.(check int) "synchronized at wait/test" 1 v
  | _ -> Alcotest.fail "unexpected payload shape"

(* ---- Schedule file round-trip ---- *)

let test_schedule_roundtrip () =
  let plan =
    Decisions.of_decisions ~np:5
      [
        { Decisions.owner = 1; epoch_id = 0; src = 2; kind = Epoch.Wildcard_recv };
        { Decisions.owner = 3; epoch_id = 4; src = 0; kind = Epoch.Wildcard_probe };
      ]
  in
  match Decisions.of_string (Decisions.to_string plan) with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok plan' ->
      Alcotest.(check int) "length" (Decisions.length plan)
        (Decisions.length plan');
      Alcotest.(check (option int)) "lookup recv" (Some 2)
        (Decisions.forced_src plan' ~owner:1 ~epoch_id:0
           ~kind:Epoch.Wildcard_recv);
      Alcotest.(check (option int)) "lookup probe" (Some 0)
        (Decisions.forced_src plan' ~owner:3 ~epoch_id:4
           ~kind:Epoch.Wildcard_probe)

let prop_schedule_roundtrip =
  QCheck.Test.make ~name:"schedule files round-trip" ~count:200
    QCheck.(
      pair (int_range 1 16)
        (small_list (triple (int_range 0 15) (int_range 0 100) (int_range 0 15))))
    (fun (np, raw) ->
      let decisions =
        List.map
          (fun (owner, epoch_id, src) ->
            {
              Decisions.owner = owner mod np;
              epoch_id;
              src;
              kind =
                (if (owner + src) mod 2 = 0 then Epoch.Wildcard_recv
                 else Epoch.Wildcard_probe);
            })
          raw
      in
      let plan = Decisions.of_decisions ~np decisions in
      match Decisions.of_string (Decisions.to_string plan) with
      | Error _ -> false
      | Ok plan' ->
          Decisions.to_string plan = Decisions.to_string plan'
          && plan.Decisions.guided_epoch = plan'.Decisions.guided_epoch)

(* ---- Interposition over the wider surface ---- *)

let verify ?(np = 4) program =
  Explorer.verify
    ~config:{ Explorer.default_config with max_runs = 5_000 }
    ~np program

(* Halo exchange via sendrecv, with a final scan sanity check. *)
module Halo (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    let rank = M.rank world and size = M.size world in
    let right = (rank + 1) mod size and left = (rank + size - 1) mod size in
    let got, st =
      M.sendrecv ~dest:right ~src:left world (Payload.int rank)
    in
    assert (Payload.to_int got = left);
    assert (st.Types.source = left);
    let prefix = M.scan ~op:Types.Sum world (Payload.int rank) in
    assert (Payload.to_int prefix = rank * (rank + 1) / 2)
end

let test_sendrecv_scan_under_dampi () =
  let report = verify (module Halo : Mpi.Mpi_intf.PROGRAM) in
  Alcotest.(check int) "halo ring verifies clean" 0
    (List.length report.Report.findings);
  Alcotest.(check int) "deterministic" 1 report.Report.interleavings

(* exscan and reduce_scatter_block through the DAMPI stack: the clock
   exchanges (exclusive prefix merge; full exchange) must neither deadlock
   nor corrupt results, and the causal ordering they imply must hold. *)
module Prefix_ops (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    let rank = M.rank world and np = M.size world in
    (match M.exscan ~op:Types.Sum world (Payload.int (rank + 1)) with
    | Payload.Unit -> assert (rank = 0)
    | p -> assert (Payload.to_int p = rank * (rank + 1) / 2));
    let contribs = Array.init np (fun r -> Payload.int ((10 * rank) + r)) in
    let mine = M.reduce_scatter_block ~op:Types.Sum world contribs in
    (* slot r = sum over s of (10 s + r) *)
    assert (Payload.to_int mine = (10 * (np * (np - 1) / 2)) + (np * rank))
end

let test_prefix_collectives_under_dampi () =
  let report = verify ~np:5 (module Prefix_ops : Mpi.Mpi_intf.PROGRAM) in
  Alcotest.(check int) "clean" 0 (List.length report.Report.findings);
  Alcotest.(check int) "deterministic" 1 report.Report.interleavings

(* exscan after a wildcard: a lower rank's open wildcard epoch leaking its
   clock through the prefix exchange must trip the monitor. *)
module Exscan_escape (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    (match M.rank world with
    | 0 ->
        let req = M.irecv ~src:M.any_source world in
        ignore (M.exscan ~op:Types.Sum world (Payload.int 1));
        ignore (M.wait req)
    | 1 ->
        M.send ~dest:0 world (Payload.int 1);
        ignore (M.exscan ~op:Types.Sum world (Payload.int 1))
    | _ -> ignore (M.exscan ~op:Types.Sum world (Payload.int 1)));
    M.barrier world
end

let test_exscan_monitor () =
  let report = verify ~np:3 (module Exscan_escape : Mpi.Mpi_intf.PROGRAM) in
  Alcotest.(check bool) "monitor flags the exscan escape" true
    (report.Report.monitor_alerts >= 1)

(* Wildcard sendrecv: the receive half is an epoch like any other. *)
module Wildcard_sendrecv (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 ->
        let got, _ =
          M.sendrecv ~dest:1 ~src:M.any_source world (Payload.int 0)
        in
        if Payload.to_int got = 2 then failwith "wildcard sendrecv bug"
    | 1 ->
        let _ = M.recv ~src:0 world in
        M.send ~dest:0 world (Payload.int 1)
    | 2 -> M.send ~dest:0 world (Payload.int 2)
    | _ -> ()
end

let test_wildcard_sendrecv_explored () =
  let report = verify ~np:3 (module Wildcard_sendrecv : Mpi.Mpi_intf.PROGRAM) in
  Alcotest.(check int) "both matches explored" 2 report.Report.interleavings;
  Alcotest.(check int) "bug found" 1
    (List.length
       (List.filter
          (fun (f : Report.finding) ->
            match f.Report.error with Report.Crash _ -> true | _ -> false)
          report.Report.findings))

(* Wildcards on a split communicator: the verifier must keep contexts
   separate (a late message on one communicator is no alternative for an
   epoch on another). *)
module Split_wildcards (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    let rank = M.rank world in
    let sub = M.comm_split ~color:(rank mod 2) ~key:rank world in
    (* Within each parity class: member 1 wildcard-receives from both other
       members... only if the class has 3+ members; with np=6 each class has
       3. *)
    (if M.size sub = 3 then
       match M.rank sub with
       | 1 ->
           let a, _ = M.recv ~src:M.any_source sub in
           let b, _ = M.recv ~src:M.any_source sub in
           ignore (Payload.to_int a + Payload.to_int b)
       | r -> M.send ~dest:1 sub (Payload.int (100 + r)));
    M.comm_free sub
end

let test_split_contexts_isolated () =
  let report = verify ~np:6 (module Split_wildcards : Mpi.Mpi_intf.PROGRAM) in
  Alcotest.(check int) "no findings" 0 (List.length report.Report.findings);
  (* Each class: 2 wildcard receives with 2 senders -> 2 orders; classes
     independent: expect > 1 but bounded exploration. *)
  Alcotest.(check bool)
    (Printf.sprintf "explores (got %d)" report.Report.interleavings)
    true
    (report.Report.interleavings >= 2)

(* A guided wildcard probe: forcing probe matches replays correctly. *)
module Probe_race (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 ->
        (* Learn a source via wildcard probe, then receive from it. *)
        let st = M.probe ~src:M.any_source world in
        let v, _ = M.recv ~src:st.Types.source world in
        if Payload.to_int v = 2 then failwith "probe steered to rank 2";
        (* Drain the other message. *)
        ignore (M.recv ~src:M.any_source world)
    | r -> M.send ~dest:0 world (Payload.int r)
end

let test_probe_epochs_explored () =
  let report = verify ~np:3 (module Probe_race : Mpi.Mpi_intf.PROGRAM) in
  Alcotest.(check bool)
    (Printf.sprintf "probe alternatives explored (got %d)"
       report.Report.interleavings)
    true
    (report.Report.interleavings >= 2);
  Alcotest.(check int) "probe-dependent bug found" 1
    (List.length
       (List.filter
          (fun (f : Report.finding) ->
            match f.Report.error with Report.Crash _ -> true | _ -> false)
          report.Report.findings))

(* Persistent requests: each start is a fresh instrumented post; a wildcard
   recv_init yields one epoch per activation. *)
module Persistent (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | 0 ->
        let template = M.recv_init ~src:M.any_source world in
        let seen = ref [] in
        for _ = 1 to 3 do
          let req = M.start template in
          ignore (M.wait req);
          seen := Payload.to_int (M.recv_data req) :: !seen
        done;
        if !seen = [ 1; 2; 1 ] then failwith "persistent order bug"
    | 1 ->
        let t = M.send_init ~dest:0 world (Payload.int 1) in
        ignore (M.waitall (M.startall [ t; t ]))
    | 2 -> M.send ~dest:0 world (Payload.int 2)
    | _ -> ()
end

let test_persistent_requests () =
  let report = verify ~np:3 (module Persistent : Mpi.Mpi_intf.PROGRAM) in
  Alcotest.(check bool)
    (Printf.sprintf "epochs per activation explored (got %d)"
       report.Report.interleavings)
    true
    (report.Report.interleavings >= 3);
  Alcotest.(check int) "order-dependent bug found" 1
    (List.length
       (List.filter
          (fun (f : Report.finding) ->
            match f.Report.error with Report.Crash _ -> true | _ -> false)
          report.Report.findings))

let test_persistent_native () =
  let rt = Mpi.Runtime.create ~np:2 () in
  let module B = Mpi.Bind.Make (struct
    let rt = rt
  end) in
  Mpi.Runtime.spawn_ranks rt (fun rank ->
      let world = B.comm_world in
      if rank = 0 then begin
        let t = B.send_init ~tag:3 ~dest:1 world (Payload.int 9) in
        ignore (B.wait (B.start t));
        ignore (B.wait (B.start t))
      end
      else begin
        let t = B.recv_init ~src:0 ~tag:3 world in
        let r1 = B.start t in
        ignore (B.wait r1);
        Alcotest.(check int) "first activation" 9
          (Payload.to_int (B.recv_data r1));
        let r2 = B.start t in
        ignore (B.wait r2);
        Alcotest.(check int) "second activation" 9
          (Payload.to_int (B.recv_data r2))
      end);
  match Mpi.Runtime.run rt with
  | Sim.Coroutine.All_finished -> ()
  | _ -> Alcotest.fail "expected completion"

let () =
  Alcotest.run "interpose"
    [
      ( "state",
        [
          Alcotest.test_case "record_epoch ticks" `Quick test_record_epoch_ticks;
          Alcotest.test_case "merge_in" `Quick test_merge_in;
          Alcotest.test_case "lateness judgement" `Quick
            test_find_potential_matches_lateness;
          Alcotest.test_case "spec filtering" `Quick
            test_find_potential_matches_spec;
          Alcotest.test_case "prune keeps equal ids" `Quick
            test_scan_pruning_covers_equal_ids;
          Alcotest.test_case "bounded mixing window" `Quick
            test_bounded_mixing_window_math;
          Alcotest.test_case "initial run unbounded" `Quick
            test_initial_run_unbounded;
          Alcotest.test_case "monitor watch set" `Quick test_monitor_watch_set;
          Alcotest.test_case "pcontrol nesting" `Quick test_pcontrol_nesting;
          Alcotest.test_case "dual clock lag" `Quick test_dual_clock_lag;
        ] );
      ( "schedule-files",
        [
          Alcotest.test_case "round trip" `Quick test_schedule_roundtrip;
          QCheck_alcotest.to_alcotest prop_schedule_roundtrip;
        ] );
      ( "surface",
        [
          Alcotest.test_case "persistent requests (native)" `Quick
            test_persistent_native;
          Alcotest.test_case "persistent requests under DAMPI" `Quick
            test_persistent_requests;
          Alcotest.test_case "sendrecv + scan under DAMPI" `Quick
            test_sendrecv_scan_under_dampi;
          Alcotest.test_case "exscan + reduce_scatter under DAMPI" `Quick
            test_prefix_collectives_under_dampi;
          Alcotest.test_case "exscan clock escape monitored" `Quick
            test_exscan_monitor;
          Alcotest.test_case "wildcard sendrecv explored" `Quick
            test_wildcard_sendrecv_explored;
          Alcotest.test_case "split contexts isolated" `Quick
            test_split_contexts_isolated;
          Alcotest.test_case "probe epochs explored" `Quick
            test_probe_epochs_explored;
        ] );
    ]
