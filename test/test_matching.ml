(* Property-based tests of the message-matching engine — the substrate whose
   non-overtaking discipline the whole verification approach leans on. *)

module Matching = Mpi.Matching
module Envelope = Mpi.Envelope
module Request = Mpi.Request
module Types = Mpi.Types
module Payload = Mpi.Payload

(* Build an envelope by hand; uid doubles as global arrival order. *)
let env ~uid ~src ~tag ~seq =
  {
    Envelope.uid;
    src;
    dst = 0;
    tag;
    ctx = 0;
    seq;
    payload = Payload.Int uid;
    send_time = 0.0;
    delay = 0.0;
    sync = false;
    send_req = -1;
  }

let recv_req ~uid ~src ~tag =
  {
    Request.uid;
    owner = 0;
    kind =
      Request.Recv
        { src; tag; ctx = 0; posted_as_wildcard = src = Types.any_source };
    complete = false;
    released = false;
    status = None;
    data = None;
    arrive_time = 0.0;
  }

(* Feed a stream of arrivals into a mailbox, per-source seq numbers kept
   consistent with arrival order (as the runtime does). *)
let mailbox_of_arrivals srcs_tags =
  let mbox = Matching.create () in
  let seqs = Hashtbl.create 8 in
  List.iteri
    (fun i (src, tag) ->
      let seq = Option.value ~default:0 (Hashtbl.find_opt seqs src) in
      Hashtbl.replace seqs src (seq + 1);
      match Matching.on_arrival mbox (env ~uid:i ~src ~tag ~seq) with
      | Matching.Queued -> ()
      | Matching.Delivered _ -> assert false (* no receives posted *))
    srcs_tags;
  mbox

let gen_arrivals =
  QCheck.(small_list (pair (int_range 0 4) (int_range 0 2)))

let prop_candidates_one_per_source =
  QCheck.Test.make ~name:"candidates: at most one per source, spec-matching"
    ~count:300 gen_arrivals
    (fun arrivals ->
      let mbox = mailbox_of_arrivals arrivals in
      let cands =
        Matching.candidates mbox ~src:Types.any_source ~tag:Types.any_tag ~ctx:0
      in
      let srcs = List.map (fun (e : Envelope.t) -> e.Envelope.src) cands in
      List.length (List.sort_uniq compare srcs) = List.length srcs)

let prop_candidates_earliest_per_source =
  QCheck.Test.make ~name:"candidates: earliest matching message per source"
    ~count:300 gen_arrivals
    (fun arrivals ->
      let mbox = mailbox_of_arrivals arrivals in
      let cands =
        Matching.candidates mbox ~src:Types.any_source ~tag:Types.any_tag ~ctx:0
      in
      List.for_all
        (fun (c : Envelope.t) ->
          List.for_all
            (fun (other : Envelope.t) ->
              other.Envelope.src <> c.Envelope.src
              || other.Envelope.uid >= c.Envelope.uid)
            (Matching.unexpected mbox))
        cands)

let prop_tag_filter =
  QCheck.Test.make ~name:"candidates: tag spec respected" ~count:300
    (QCheck.pair gen_arrivals (QCheck.int_range 0 2))
    (fun (arrivals, tag) ->
      let mbox = mailbox_of_arrivals arrivals in
      let cands = Matching.candidates mbox ~src:Types.any_source ~tag ~ctx:0 in
      List.for_all (fun (e : Envelope.t) -> e.Envelope.tag = tag) cands)

(* Drain a mailbox with wildcard receives that always pick the first
   candidate: per source, the consumed messages must come out in seq
   order (non-overtaking). *)
let prop_non_overtaking_drain =
  QCheck.Test.make ~name:"drain preserves per-source seq order" ~count:300
    gen_arrivals
    (fun arrivals ->
      let mbox = mailbox_of_arrivals arrivals in
      let taken = ref [] in
      let n = List.length arrivals in
      let ok = ref true in
      for i = 0 to n - 1 do
        let req = recv_req ~uid:(1000 + i) ~src:Types.any_source ~tag:Types.any_tag in
        match Matching.post_recv mbox req ~choose:List.hd with
        | Some env -> taken := env :: !taken
        | None -> ok := false
      done;
      let per_source = Hashtbl.create 8 in
      List.iter
        (fun (e : Envelope.t) ->
          let prev =
            Option.value ~default:(-1) (Hashtbl.find_opt per_source e.Envelope.src)
          in
          if e.Envelope.seq <> prev + 1 then ok := false;
          Hashtbl.replace per_source e.Envelope.src e.Envelope.seq)
        (List.rev !taken);
      !ok)

(* Posting then arriving: the earliest posted matching receive wins. *)
let test_arrival_matches_earliest_posted () =
  let mbox = Matching.create () in
  let r1 = recv_req ~uid:1 ~src:Types.any_source ~tag:7 in
  let r2 = recv_req ~uid:2 ~src:Types.any_source ~tag:Types.any_tag in
  assert (Matching.post_recv mbox r1 ~choose:List.hd = None);
  assert (Matching.post_recv mbox r2 ~choose:List.hd = None);
  (match Matching.on_arrival mbox (env ~uid:0 ~src:3 ~tag:7 ~seq:0) with
  | Matching.Delivered req ->
      Alcotest.(check int) "tag-7 message goes to the tag-7 receive" 1
        req.Request.uid
  | Matching.Queued -> Alcotest.fail "expected delivery");
  match Matching.on_arrival mbox (env ~uid:1 ~src:3 ~tag:9 ~seq:1) with
  | Matching.Delivered req ->
      Alcotest.(check int) "tag-9 message goes to the wildcard" 2
        req.Request.uid
  | Matching.Queued -> Alcotest.fail "expected delivery"

let test_choose_consulted_only_on_ambiguity () =
  let mbox = Matching.create () in
  ignore (Matching.on_arrival mbox (env ~uid:0 ~src:1 ~tag:0 ~seq:0));
  let called = ref false in
  let choose l =
    called := true;
    List.hd l
  in
  let r = recv_req ~uid:5 ~src:Types.any_source ~tag:Types.any_tag in
  ignore (Matching.post_recv mbox r ~choose);
  Alcotest.(check bool) "single candidate: oracle not consulted" false !called;
  ignore (Matching.on_arrival mbox (env ~uid:1 ~src:1 ~tag:0 ~seq:1));
  ignore (Matching.on_arrival mbox (env ~uid:2 ~src:2 ~tag:0 ~seq:0));
  let r2 = recv_req ~uid:6 ~src:Types.any_source ~tag:Types.any_tag in
  ignore (Matching.post_recv mbox r2 ~choose);
  Alcotest.(check bool) "two sources: oracle consulted" true !called

let test_oracle_choice_removed () =
  let mbox = Matching.create () in
  ignore (Matching.on_arrival mbox (env ~uid:0 ~src:1 ~tag:0 ~seq:0));
  ignore (Matching.on_arrival mbox (env ~uid:1 ~src:2 ~tag:0 ~seq:0));
  let pick_src_2 cands =
    List.find (fun (e : Envelope.t) -> e.Envelope.src = 2) cands
  in
  let r = recv_req ~uid:9 ~src:Types.any_source ~tag:Types.any_tag in
  (match Matching.post_recv mbox r ~choose:pick_src_2 with
  | Some e -> Alcotest.(check int) "oracle's pick returned" 2 e.Envelope.src
  | None -> Alcotest.fail "expected a match");
  Alcotest.(check int) "only the pick was removed" 1
    (Matching.unexpected_count mbox);
  match Matching.unexpected mbox with
  | [ e ] -> Alcotest.(check int) "src-1 message remains" 1 e.Envelope.src
  | _ -> Alcotest.fail "unexpected queue shape"

let test_cancel_posted () =
  let mbox = Matching.create () in
  let r = recv_req ~uid:3 ~src:0 ~tag:0 in
  assert (Matching.post_recv mbox r ~choose:List.hd = None);
  Alcotest.(check int) "posted" 1 (Matching.posted_count mbox);
  Matching.cancel_posted mbox r;
  Alcotest.(check int) "cancelled" 0 (Matching.posted_count mbox)

let () =
  Alcotest.run "matching"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_candidates_one_per_source;
          QCheck_alcotest.to_alcotest prop_candidates_earliest_per_source;
          QCheck_alcotest.to_alcotest prop_tag_filter;
          QCheck_alcotest.to_alcotest prop_non_overtaking_drain;
        ] );
      ( "unit",
        [
          Alcotest.test_case "earliest posted wins" `Quick
            test_arrival_matches_earliest_posted;
          Alcotest.test_case "oracle consulted only on ambiguity" `Quick
            test_choose_consulted_only_on_ambiguity;
          Alcotest.test_case "oracle choice removed from queue" `Quick
            test_oracle_choice_removed;
          Alcotest.test_case "cancel posted" `Quick test_cancel_posted;
        ] );
    ]
