(* QCheck fuzz of the wire assembler (the coordinator's parser of
   worker-controlled bytes). Three properties:

   - a valid proto=2 conversation survives ANY byte-boundary split of its
     serialization — the assembler is framing-agnostic;
   - corrupting a line of a valid conversation yields [Error], never an
     exception and never a silently mis-parsed message;
   - arbitrary byte flips (including of newlines) never raise — malformed
     input is always an [Error] value the coordinator can act on. *)

module Wire = Dampi.Wire
module Checkpoint = Dampi.Checkpoint
module Decisions = Dampi.Decisions

(* ---- generators ---- *)

let gen_text =
  (* free-form text fields: printable, spaces, percent signs, newlines —
     everything the percent-encoding must defuse *)
  QCheck.Gen.(
    string_size ~gen:(oneof [ printable; return ' '; return '%'; return '\n' ])
      (0 -- 24))

let gen_decision =
  QCheck.Gen.(
    map
      (fun (owner, epoch_id, src, k) ->
        {
          Decisions.owner;
          epoch_id;
          src;
          kind =
            (if k then Dampi.Epoch.Wildcard_recv
             else Dampi.Epoch.Wildcard_probe);
        })
      (quad (0 -- 7) (0 -- 99) (0 -- 7) bool))

let gen_summary =
  QCheck.Gen.(
    map
      (fun ((owner, id, k, ctx), (tag, matched, alts, expandable)) ->
        {
          Dampi.Epoch.s_owner = owner;
          s_id = id;
          s_kind =
            (if k then Dampi.Epoch.Wildcard_recv
             else Dampi.Epoch.Wildcard_probe);
          s_ctx = ctx;
          s_tag = tag;
          s_matched = matched;
          s_alternatives = List.sort_uniq compare alts;
          s_expandable = expandable;
        })
      (pair
         (quad (0 -- 7) (0 -- 99) bool (0 -- 3))
         (quad (int_range (-1) 9) (0 -- 7) (list_size (0 -- 3) (0 -- 7)) bool)))

let gen_item =
  (* sleep lists exercise the 3-field item codec; [] keeps the legacy
     2-field form in the mix *)
  QCheck.Gen.(
    map
      (fun (prefix, choice, sleep) -> { Checkpoint.prefix; choice; sleep })
      (triple (list_size (0 -- 3) gen_decision) gen_decision
         (list_size (0 -- 2) gen_summary)))

let gen_run =
  QCheck.Gen.(
    map
      (fun (key, payload, (timeouts, retries, transients)) ->
        {
          Wire.key;
          payload;
          timeouts;
          retries;
          transients;
        })
      (triple
         (map Checkpoint.item_key gen_item)
         (oneof
            [
              return None;
              map
                (fun ((vtime, bounded, children), pruned) ->
                  Some { Wire.vtime; bounded; errors = []; children; pruned })
                (pair
                   (triple (float_bound_inclusive 1e6) (0 -- 9)
                      (list_size (0 -- 2) gen_item))
                   (0 -- 5));
            ])
         (triple (0 -- 3) (0 -- 3) (0 -- 3))))

let gen_msg =
  QCheck.Gen.(
    oneof
      [
        map
          (fun (id, session, epoch, pending) ->
            Wire.Hello
              {
                proto = Wire.proto_version;
                id;
                session;
                epoch;
                pending;
                role = None;
              })
          (quad gen_text gen_text (0 -- 9)
             (oneof [ return None; map Option.some (0 -- 9) ]));
        map (fun mac -> Wire.Auth mac) gen_text;
        return Wire.Ready;
        return Wire.Heartbeat;
        map
          (fun (epoch, lease_id, runs) -> Wire.Results { epoch; lease_id; runs })
          (triple (0 -- 9) (0 -- 99) (list_size (0 -- 4) gen_run));
        map (fun reason -> Wire.Failed reason) gen_text;
      ])

let gen_conversation = QCheck.Gen.(list_size (1 -- 6) gen_msg)

let serialize msgs =
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w in
  List.iter (Wire.write_to_coord oc) msgs;
  close_out oc;
  let ic = Unix.in_channel_of_descr r in
  let b = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel b ic 1
     done
   with End_of_file -> ());
  close_in ic;
  Buffer.contents b

(* Feed [raw] to a fresh assembler in chunks cut at [cuts] (sorted byte
   offsets); returns every yielded result. *)
let feed_chunks raw cuts =
  let a = Wire.assembler () in
  let out = ref [] in
  let emit from upto =
    if upto > from then begin
      let b = Bytes.of_string (String.sub raw from (upto - from)) in
      out := List.rev_append (Wire.feed a b (Bytes.length b)) !out
    end
  in
  let last = List.fold_left (fun from cut -> emit from cut; cut) 0 cuts in
  emit last (String.length raw);
  List.rev !out

let arb_split =
  QCheck.make
    ~print:(fun (msgs, _) -> string_of_int (List.length msgs) ^ " message(s)")
    QCheck.Gen.(
      gen_conversation >>= fun msgs ->
      let raw = serialize msgs in
      let n = String.length raw in
      map
        (fun cuts -> (msgs, List.sort_uniq compare cuts))
        (list_size (0 -- 12) (0 -- n)))

let prop_splits_reassemble =
  QCheck.Test.make ~name:"any byte-boundary split reassembles intact"
    ~count:300 arb_split (fun (msgs, cuts) ->
      let raw = serialize msgs in
      let out = feed_chunks raw cuts in
      List.length out = List.length msgs
      && List.for_all2
           (fun got want -> match got with Ok m -> m = want | Error _ -> false)
           out msgs)

let arb_corrupt_line =
  QCheck.make
    ~print:(fun (_, line) -> Printf.sprintf "line %d corrupted" line)
    QCheck.Gen.(
      gen_conversation >>= fun msgs ->
      let raw = serialize msgs in
      let lines =
        List.length (String.split_on_char '\n' raw) - 1 (* trailing "" *)
      in
      map (fun l -> (msgs, l)) (0 -- max 0 (lines - 1)))

(* Overwrite the first byte of line [l] with 'Z' — no message or frame
   element starts with it, so the line is guaranteed invalid. *)
let corrupt_line raw l =
  let b = Bytes.of_string raw in
  let line = ref 0 and start = ref 0 in
  String.iteri
    (fun i c ->
      if !line = l && i = !start && c <> '\n' then Bytes.set b i 'Z';
      if c = '\n' then begin
        incr line;
        start := i + 1
      end)
    raw;
  Bytes.to_string b

let prop_corruption_is_an_error =
  QCheck.Test.make ~name:"a corrupted line yields Error, never an exception"
    ~count:300 arb_corrupt_line (fun (msgs, l) ->
      let raw = corrupt_line (serialize msgs) l in
      match feed_chunks raw [] with
      | out ->
          (* The corrupted line must surface as at least one Error (it may
             also poison the enclosing frame); what still parses must be a
             message we actually sent — never an invented one. *)
          List.exists (function Error _ -> true | Ok _ -> false) out
          && List.for_all
               (function Error _ -> true | Ok m -> List.mem m msgs)
               out
      | exception e ->
          QCheck.Test.fail_reportf "assembler raised %s"
            (Printexc.to_string e))

let arb_flips =
  QCheck.make
    ~print:(fun (_, flips) ->
      string_of_int (List.length flips) ^ " byte flip(s)")
    QCheck.Gen.(
      gen_conversation >>= fun msgs ->
      let raw = serialize msgs in
      let n = max 1 (String.length raw) in
      map
        (fun flips -> (msgs, flips))
        (list_size (1 -- 8) (pair (0 -- (n - 1)) (0 -- 255))))

let prop_flips_never_raise =
  QCheck.Test.make ~name:"random byte flips never raise" ~count:300 arb_flips
    (fun (msgs, flips) ->
      let raw = serialize msgs in
      let b = Bytes.of_string raw in
      List.iter
        (fun (i, v) ->
          if i < Bytes.length b then Bytes.set b i (Char.chr v))
        flips;
      match feed_chunks (Bytes.to_string b) [] with
      | _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "assembler raised %s"
            (Printexc.to_string e))

(* ---- transport-chaos coverage: what Fault.Net makes the receiver see ----

   Under injected duplication the assembler gets the same complete frame
   twice back-to-back; under chunked delivery it gets buffers mixing the
   tail of one frame with the head of the next. Both must parse
   losslessly: duplicate *parsing* is correct wire behaviour —
   deduplication belongs to the coordinator (fencing / last-settled), not
   the parser. *)

let frames msgs = List.map Wire.to_coord_string msgs

let prop_string_matches_writer =
  QCheck.Test.make
    ~name:"to_coord_string matches the channel writer byte-for-byte"
    ~count:300
    (QCheck.make gen_conversation ~print:(fun m ->
         string_of_int (List.length m) ^ " message(s)"))
    (fun msgs -> String.concat "" (frames msgs) = serialize msgs)

let dup_raw msgs i =
  String.concat ""
    (List.concat
       (List.mapi (fun j f -> if j = i then [ f; f ] else [ f ]) (frames msgs)))

let arb_dup_frame =
  QCheck.make
    ~print:(fun (msgs, i, cuts) ->
      Printf.sprintf "%d message(s), frame %d duplicated, %d cut(s)"
        (List.length msgs) i (List.length cuts))
    QCheck.Gen.(
      gen_conversation >>= fun msgs ->
      0 -- (List.length msgs - 1) >>= fun i ->
      let n = String.length (dup_raw msgs i) in
      map
        (fun cuts -> (msgs, i, List.sort_uniq compare cuts))
        (list_size (0 -- 12) (0 -- n)))

let prop_duplicated_frame_parses_twice =
  QCheck.Test.make
    ~name:"a duplicated complete frame parses as two identical messages"
    ~count:300 arb_dup_frame (fun (msgs, i, cuts) ->
      let raw = dup_raw msgs i in
      let expected =
        List.concat
          (List.mapi (fun j m -> if j = i then [ m; m ] else [ m ]) msgs)
      in
      let out = feed_chunks raw cuts in
      List.length out = List.length expected
      && List.for_all2
           (fun got want -> match got with Ok m -> m = want | Error _ -> false)
           out expected)

let gen_results_msg =
  QCheck.Gen.(
    map
      (fun (epoch, lease_id, runs) -> Wire.Results { epoch; lease_id; runs })
      (triple (0 -- 9) (0 -- 99) (list_size (1 -- 4) gen_run)))

let arb_interleaved =
  QCheck.make
    ~print:(fun (msgs, cuts) ->
      Printf.sprintf "%d message(s), %d mid-frame cut(s)" (List.length msgs)
        (List.length cuts))
    QCheck.Gen.(
      (* lead with a multi-line Results frame so cuts can land inside a
         frame body (between its lines), not merely inside a line *)
      pair gen_results_msg gen_conversation >>= fun (r, rest) ->
      let msgs = r :: rest in
      let boundaries =
        List.fold_left
          (fun acc f -> (List.hd acc + String.length f) :: acc)
          [ 0 ] (frames msgs)
      in
      let n = List.hd boundaries in
      map
        (fun cuts ->
          ( msgs,
            List.sort_uniq compare
              (List.filter (fun c -> not (List.mem c boundaries)) cuts) ))
        (list_size (1 -- 12) (1 -- max 1 (n - 1))))

let prop_interleaved_partials =
  QCheck.Test.make
    ~name:"chunks mixing adjacent frames' partial bytes reassemble"
    ~count:300 arb_interleaved (fun (msgs, cuts) ->
      (* every cut lies strictly inside a frame, so each chunk past the
         first begins with the partial tail of a frame already under
         assembly — the shape duplicated/reordered delivery produces *)
      let raw = String.concat "" (frames msgs) in
      let out = feed_chunks raw cuts in
      List.length out = List.length msgs
      && List.for_all2
           (fun got want -> match got with Ok m -> m = want | Error _ -> false)
           out msgs)

(* ---- bounded line buffering: a newline-less flood cannot grow the
   assembler without limit. The valid prefix still parses, the overflow
   surfaces as exactly one trailing Error naming the cap, nothing raises,
   and the assembler stays dead (every later feed yields nothing). *)

let arb_flood =
  QCheck.make
    ~print:(fun (msgs, junk_len, cuts) ->
      Printf.sprintf "%d message(s), %d junk byte(s), %d cut(s)"
        (List.length msgs) junk_len (List.length cuts))
    QCheck.Gen.(
      gen_conversation >>= fun msgs ->
      (* strictly past the cap, never containing '\n' *)
      int_range (Wire.default_max_line + 1) (Wire.default_max_line + 4096)
      >>= fun junk_len ->
      let n = String.length (serialize msgs) + junk_len in
      map
        (fun cuts -> (msgs, junk_len, List.sort_uniq compare cuts))
        (list_size (0 -- 12) (0 -- n)))

let prop_unterminated_flood_is_bounded =
  QCheck.Test.make
    ~name:"an unterminated over-cap flood yields one Error and a dead assembler"
    ~count:40 arb_flood (fun (msgs, junk_len, cuts) ->
      let raw = serialize msgs ^ String.make junk_len 'x' in
      let a = Wire.assembler () in
      let out = ref [] in
      let emit from upto =
        if upto > from then begin
          let b = Bytes.of_string (String.sub raw from (upto - from)) in
          out := List.rev_append (Wire.feed a b (Bytes.length b)) !out
        end
      in
      (match
         let last =
           List.fold_left (fun from cut -> emit from cut; cut) 0 cuts
         in
         emit last (String.length raw)
       with
      | () -> ()
      | exception e ->
          QCheck.Test.fail_reportf "assembler raised %s" (Printexc.to_string e));
      let out = List.rev !out in
      let oks = List.filter_map (function Ok m -> Some m | _ -> None) out in
      let errs =
        List.filter_map (function Error e -> Some e | _ -> None) out
      in
      (* valid prefix intact; one overflow error mentioning the cap *)
      oks = msgs
      && List.length errs = 1
      && (let e = List.hd errs in
          let cap = string_of_int Wire.default_max_line in
          let rec mem i =
            i + String.length cap <= String.length e
            && (String.sub e i (String.length cap) = cap || mem (i + 1))
          in
          mem 0)
      (* and the assembler is dead: later input — even well-formed — is
         swallowed without output *)
      && Wire.feed a (Bytes.of_string "hb\n") 3 = [])

let () =
  Alcotest.run "wire-fuzz"
    [
      ( "assembler",
        [
          QCheck_alcotest.to_alcotest prop_splits_reassemble;
          QCheck_alcotest.to_alcotest prop_corruption_is_an_error;
          QCheck_alcotest.to_alcotest prop_flips_never_raise;
          QCheck_alcotest.to_alcotest prop_string_matches_writer;
          QCheck_alcotest.to_alcotest prop_duplicated_frame_parses_twice;
          QCheck_alcotest.to_alcotest prop_interleaved_partials;
          QCheck_alcotest.to_alcotest prop_unterminated_flood_is_bounded;
        ] );
    ]
