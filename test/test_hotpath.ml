(* Differential tests for the zero-allocation hot path.

   The encoded clock algebra ([tick_into]/[merge_into]/[is_late_enc]),
   pooled piggyback buffers, and pooled envelopes are pure cost
   optimizations: they must never change verification results. Two bars:

   1. Canonical-report equivalence. For every registry workload and both
      clock flavors, a run whose clock module is the decode/apply/encode
      [Clocks.Reference] adapter (the old pure tick/merge semantics, one
      allocation per op) produces a canonical report byte-identical to the
      native in-place runtimes at jobs=1 and jobs=4 — and, for the
      wildcard-heavy workloads, to a distribute=2 run over the real wire
      protocol.

   2. An allocation budget. The per-replay minor-heap cost of the default
      path (trace off, pruning off, jobs=1) is pinned under a fixed budget
      so an accidental reintroduction of per-op allocation fails loudly
      rather than silently eroding replay throughput. *)

module Explorer = Dampi.Explorer
module Report = Dampi.Report
module State = Dampi.State
module Coordinator = Dampi.Coordinator
module Remote_worker = Dampi.Remote_worker
module Wire = Dampi.Wire

(* ---- the registry ---- *)

type entry = {
  e_name : string;
  e_np : int;
  e_config : (module Clocks.Clock_intf.S) -> State.config;
  e_build : unit -> Mpi.Mpi_intf.program;
  e_distribute : bool;  (* also run the (slower) distribute=2 leg *)
}

let registry =
  [
    {
      e_name = "fig3";
      e_np = 3;
      e_config = (fun clock -> State.make_config ~clock ());
      e_build = (fun () -> Workloads.Patterns.fig3);
      e_distribute = true;
    };
    {
      e_name = "fig4";
      e_np = 4;
      e_config = (fun clock -> State.make_config ~clock ());
      e_build = (fun () -> Workloads.Patterns.fig4);
      e_distribute = true;
    };
    {
      e_name = "deadlock";
      e_np = 2;
      e_config = (fun clock -> State.make_config ~clock ());
      e_build = (fun () -> Workloads.Patterns.head_to_head);
      e_distribute = false;
    };
    {
      e_name = "matmult";
      e_np = 6;
      e_config = (fun clock -> State.make_config ~clock ());
      e_build =
        (fun () ->
          Workloads.Matmult.program
            ~params:
              { Workloads.Matmult.default_params with n = 6; rows_per_task = 1 }
            ());
      e_distribute = false;
    };
    {
      e_name = "adlb/k0";
      e_np = 6;
      e_config = (fun clock -> State.make_config ~clock ~mixing_bound:0 ());
      e_build = (fun () -> Workloads.Adlb.program ());
      e_distribute = false;
    };
  ]

let lamport = (module Clocks.Lamport : Clocks.Clock_intf.S)
let vector = (module Clocks.Vector : Clocks.Clock_intf.S)

module Ref_lamport = Clocks.Reference.Make (Clocks.Lamport)
module Ref_vector = Clocks.Reference.Make (Clocks.Vector)

(* (flavor name, native module, pure-reference module) *)
let flavors =
  [
    ("lamport", lamport, (module Ref_lamport : Clocks.Clock_intf.S));
    ("vector", vector, (module Ref_vector : Clocks.Clock_intf.S));
  ]

(* ---- runners ---- *)

let verify_local ~np ~state_config ~jobs build =
  Explorer.verify
    ~config:{ Explorer.default_config with state_config; jobs }
    ~np (build ())

(* distribute=2: in-process worker domains speaking the real wire protocol
   over socketpairs (the test_distributed/test_pruning harness). *)
let verify_distributed ~name ~np ~state_config build =
  let resolve (job : Wire.job) =
    if job.Wire.workload <> name then
      Error (Printf.sprintf "unknown workload %S" job.Wire.workload)
    else
      Ok
        {
          Remote_worker.np;
          runner =
            Explorer.dampi_runner
              { Explorer.default_config with state_config }
              ~np (build ());
          rb = Explorer.default_robustness;
          prune = false;
        }
  in
  let workers =
    List.init 2 (fun _ ->
        let c, w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let d =
          Domain.spawn (fun () -> ignore (Remote_worker.serve ~resolve w))
        in
        (c, d))
  in
  let setup =
    {
      Coordinator.attach = Coordinator.Fds (List.map fst workers);
      job = { Wire.workload = name; np; params = [] };
      lease_size = 2;
      heartbeat_timeout = Coordinator.default_heartbeat_timeout;
      join_timeout = Coordinator.default_join_timeout;
      rejoin_grace = 0.05;
      auth = None;
      net_fault = None;
      outq_budget = Coordinator.default_outq_budget;
    }
  in
  let r =
    Explorer.verify
      ~config:{ Explorer.default_config with state_config; jobs = 1 }
      ~distribute:setup ~np (build ())
  in
  List.iter (fun (_, d) -> Domain.join d) workers;
  r
[@@warning "-27"]

(* The full canonical content of a report. Unlike the pruning matrix, the
   clock representation must not change the walk at all, so everything
   deterministic is compared — counts, coverage, and the structural
   findings (error AND reproduction schedule). [total_virtual_time] is a
   float sum accumulated in replay-completion order, so it is only
   byte-stable within a single scheduling discipline: the jobs=1 legs
   compare it, the parallel/distributed legs (which sum in worker-arrival
   order) do not. *)
let canonical ?(with_vt = true) (r : Report.t) =
  ( ( r.Report.np,
      r.Report.interleavings,
      r.Report.wildcards_analyzed,
      r.Report.bounded_epochs,
      r.Report.runs_pruned,
      r.Report.monitor_alerts ),
    (if with_vt then r.Report.total_virtual_time else 0.0),
    List.sort compare
      (List.map
         (fun (f : Report.finding) -> (f.Report.error, f.Report.schedule))
         r.Report.findings) )

let check_entry (e : entry) () =
  List.iter
    (fun (flavor, native, reference) ->
      let label what = Printf.sprintf "%s/%s: %s" e.e_name flavor what in
      let baseline =
        verify_local ~np:e.e_np ~state_config:(e.e_config reference) ~jobs:1
          e.e_build
      in
      let native1 =
        verify_local ~np:e.e_np ~state_config:(e.e_config native) ~jobs:1
          e.e_build
      in
      Alcotest.(check bool)
        (label "pure reference == native jobs=1")
        true
        (canonical baseline = canonical native1);
      let native4 =
        verify_local ~np:e.e_np ~state_config:(e.e_config native) ~jobs:4
          e.e_build
      in
      Alcotest.(check bool)
        (label "pure reference == native jobs=4")
        true
        (canonical ~with_vt:false baseline = canonical ~with_vt:false native4);
      if e.e_distribute then begin
        let dist =
          verify_distributed ~name:e.e_name ~np:e.e_np
            ~state_config:(e.e_config native) e.e_build
        in
        Alcotest.(check bool)
          (label "pure reference == native distribute=2")
          true
          (canonical ~with_vt:false baseline = canonical ~with_vt:false dist)
      end)
    flavors

(* ---- allocation budget ----

   Per-replay minor words on the default path (trace off, pruning off,
   jobs=1). The refactored hot path measures ~20k words/replay on matmult
   (n=6, rows_per_task=1, np=6); the pre-refactor code sat at ~77k. The
   budget is set between the two with headroom for honest variation, so it
   catches a wholesale return of copy-per-op clocks, per-message piggyback
   boxing, or per-wait string formatting — not minor drift. *)
let alloc_budget_words_per_replay = 45_000.0

let test_allocation_budget () =
  let build () =
    Workloads.Matmult.program
      ~params:{ Workloads.Matmult.default_params with n = 6; rows_per_task = 1 }
      ()
  in
  let run () = verify_local ~np:6 ~state_config:State.default_config ~jobs:1 build in
  ignore (run ());  (* warm-up: one-time lazies, hash-table growth *)
  let before = Gc.minor_words () in
  let r = run () in
  let after = Gc.minor_words () in
  Alcotest.(check bool) "exploration is non-trivial" true (r.Report.interleavings > 100);
  let per_replay = (after -. before) /. float_of_int r.Report.interleavings in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f minor words/replay within budget %.0f" per_replay
       alloc_budget_words_per_replay)
    true
    (per_replay <= alloc_budget_words_per_replay)

let () =
  Alcotest.run "hotpath"
    [
      ( "clock-representation equivalence",
        List.map
          (fun e -> Alcotest.test_case e.e_name `Quick (check_entry e))
          registry );
      ( "allocation",
        [ Alcotest.test_case "minor words per replay" `Quick test_allocation_budget ] );
    ]
