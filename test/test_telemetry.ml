(* Cluster-telemetry acceptance.

   Differential half: the metric totals a verification reports must not
   depend on how the work was spread — the same counters (runtime match
   attempts, piggyback bytes, cache hits) must come out equal whether the
   exploration ran sequentially, on an in-process pool, or distributed
   over the wire with per-worker deltas merged coordinator-side. That is
   what makes the telemetry trustworthy enough to dashboard.

   Fuzz half: telemetry is advisory by contract ({!Dampi.Wire}) — a
   corrupted or truncated telemetry frame must be skipped or dropped
   whole by the assembler, never raise, and never prevent the next
   non-telemetry message on the connection from parsing (i.e. it cannot
   poison the session the way a malformed results frame would). *)

module Explorer = Dampi.Explorer
module Report = Dampi.Report
module State = Dampi.State
module Coordinator = Dampi.Coordinator
module Remote_worker = Dampi.Remote_worker
module Wire = Dampi.Wire

(* ---- differential harness ---- *)

(* Small exhaustive workloads (mirrors test_distributed's registry). *)
let registry : (string * int * (unit -> Mpi.Mpi_intf.program)) list =
  [
    ("fig3", 3, fun () -> Workloads.Patterns.fig3);
    ("fig4", 4, fun () -> Workloads.Patterns.fig4);
    ( "matmult",
      5,
      fun () ->
        Workloads.Matmult.program
          ~params:
            { Workloads.Matmult.default_params with n = 8; rows_per_task = 2 }
          () );
  ]

let resolve (job : Wire.job) =
  match
    List.find_opt (fun (n, _, _) -> n = job.Wire.workload) registry
  with
  | None -> Error (Printf.sprintf "unknown workload %S" job.Wire.workload)
  | Some (_, np, build) ->
      Ok
        {
          Remote_worker.np;
          runner = Explorer.dampi_runner Explorer.default_config ~np (build ());
          rb = Explorer.default_robustness;
          prune = false;
        }

let spawn_workers n =
  List.init n (fun _ ->
      let c, w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let d = Domain.spawn (fun () -> ignore (Remote_worker.serve ~resolve w)) in
      (c, d))

(* The counters the acceptance bar names, plus clock merges for depth.
   [cache.hits] is absent (= 0) on all sides here — no cache configured —
   which is itself the equality that matters: no mode invents series. *)
let compared =
  [
    "mpi.match_attempts";
    "dampi.piggyback_bytes";
    "dampi.clock_merges";
    "cache.hits";
  ]

let totals (r : Report.t) =
  List.map (fun k -> (k, Obs.Metrics.counter_value r.Report.metrics k)) compared

let check_totals_equal (name, np, build) () =
  let seq = Explorer.verify ~np (build ()) in
  let pooled =
    Explorer.verify
      ~config:{ Explorer.default_config with jobs = 4 }
      ~np (build ())
  in
  let workers = spawn_workers 2 in
  let setup =
    {
      Coordinator.attach = Coordinator.Fds (List.map fst workers);
      job = { Wire.workload = name; np; params = [] };
      lease_size = 2;
      heartbeat_timeout = Coordinator.default_heartbeat_timeout;
      join_timeout = Coordinator.default_join_timeout;
      rejoin_grace = 0.05;
      auth = None;
      net_fault = None;
      outq_budget = Coordinator.default_outq_budget;
    }
  in
  let dist = Explorer.verify ~distribute:setup ~np (build ()) in
  List.iter (fun (_, d) -> Domain.join d) workers;
  Alcotest.(check (list (pair string int)))
    (name ^ ": jobs=4 totals equal jobs=1")
    (totals seq) (totals pooled);
  Alcotest.(check (list (pair string int)))
    (name ^ ": distribute=2 merged totals equal jobs=1")
    (totals seq) (totals dist);
  (* The distributed report keeps per-worker provenance: remote deltas
     appear as worker snapshots labeled by session id (w<pid>-<hex>),
     alongside the local w<i>/sched/aux shards — provided the frontier
     produced any remote replays at all (fig4 under Lamport does not:
     the imprecision hides the race, so the self run is the whole
     exploration). *)
  let remote_labels =
    List.filter
      (fun (l, _) -> String.contains l '-')
      dist.Report.worker_metrics
  in
  if dist.Report.interleavings > 1 then
    Alcotest.(check bool)
      (name ^ ": remote worker snapshots present")
      true
      (List.length remote_labels > 0)

(* Profiler histograms appear only under [profile = true], and their
   sample counts line up with the work that was actually measured. *)
let check_profile_series () =
  let np = 3 in
  let build () = Workloads.Patterns.fig3 in
  let plain = Explorer.verify ~np (build ()) in
  let profiled =
    Explorer.verify
      ~config:{ Explorer.default_config with profile = true }
      ~np (build ())
  in
  let hist_count (r : Report.t) name =
    match Obs.Metrics.find r.Report.metrics name with
    | Some (Obs.Metrics.Histogram h) -> h.Obs.Metrics.count
    | _ -> -1
  in
  List.iter
    (fun name ->
      Alcotest.(check int)
        (name ^ " absent without --profile")
        (-1) (hist_count plain name))
    [ "profile.match_loop_s"; "profile.clock_merge_s" ];
  Alcotest.(check bool)
    "profile.match_loop_s recorded samples" true
    (hist_count profiled "profile.match_loop_s" > 0);
  Alcotest.(check bool)
    "profile.clock_merge_s recorded samples" true
    (hist_count profiled "profile.clock_merge_s" > 0);
  (* Profiling must not perturb the canonical report. *)
  Alcotest.(check int)
    "same interleavings with profiling" plain.Report.interleavings
    profiled.Report.interleavings

(* ---- telemetry frame fuzz ---- *)

(* A registry with some activity in every sample kind, so generated
   frames carry realistic counter/gauge/histogram tokens. *)
let real_delta () =
  let reg = Obs.Metrics.create ~shards:1 () in
  let sh = Obs.Metrics.shard reg 0 in
  let c = Obs.Metrics.counter sh "fuzz.counter" in
  let h = Obs.Metrics.histogram sh "fuzz.hist" in
  Obs.Metrics.add c 7;
  Obs.Metrics.gauge_set sh "fuzz.gauge" 3.25;
  Obs.Metrics.observe h 0.004;
  Obs.Metrics.observe h 1.5;
  Obs.Metrics.to_delta ~prev:[] (Obs.Metrics.snapshot reg)

let gen_series =
  QCheck.Gen.(
    let gen_name =
      map
        (fun (a, b) -> Printf.sprintf "%s.%s" a b)
        (pair (string_size ~gen:(char_range 'a' 'z') (1 -- 8))
           (string_size ~gen:(char_range 'a' 'z') (1 -- 8)))
    in
    let gen_sample =
      oneof
        [
          map (fun n -> Obs.Metrics.Counter n) (0 -- 1_000_000);
          map (fun f -> Obs.Metrics.Gauge f) (float_bound_inclusive 1e6);
        ]
    in
    map
      (fun (pairs, with_hist) ->
        (if with_hist then real_delta () else []) @ pairs)
      (pair (list_size (0 -- 6) (pair gen_name gen_sample)) bool))

let serialize msgs =
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w in
  List.iter (Wire.write_to_coord oc) msgs;
  close_out oc;
  let ic = Unix.in_channel_of_descr r in
  let b = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel b ic 1
     done
   with End_of_file -> ());
  close_in ic;
  Buffer.contents b

let feed_all raw =
  let a = Wire.assembler () in
  let b = Bytes.of_string raw in
  Wire.feed a b (Bytes.length b)

(* Corrupt bytes of the telemetry frame body only: after the header line,
   excluding the frame's very last newline (so the appended heartbeat
   always starts a fresh line, as it would on a live socket where frames
   are written whole). *)
let arb_body_corruption =
  QCheck.make
    ~print:(fun (_, flips) ->
      string_of_int (List.length flips) ^ " body flip(s)")
    QCheck.Gen.(
      gen_series >>= fun series ->
      let raw = serialize [ Wire.Telemetry series ] in
      let body_start = String.index raw '\n' + 1 in
      let body_end = String.length raw - 1 in
      if body_end <= body_start then return (raw, [])
      else
        map
          (fun flips -> (raw, flips))
          (list_size (1 -- 6)
             (pair (int_range body_start (body_end - 1)) (0 -- 255))))

let prop_corrupt_body_never_poisons =
  QCheck.Test.make
    ~name:"corrupted telemetry body: no exception, no Error, session lives"
    ~count:500 arb_body_corruption (fun (raw, flips) ->
      let b = Bytes.of_string raw in
      List.iter (fun (i, v) -> Bytes.set b i (Char.chr v)) flips;
      let stream = Bytes.to_string b ^ serialize [ Wire.Heartbeat ] in
      match feed_all stream with
      | out ->
          (* Whatever happened to the frame — samples skipped, frame
             dropped whole — the connection-fatal outcome (an [Error]) is
             forbidden, and the next real message must get through. *)
          List.for_all (function Ok _ -> true | Error _ -> false) out
          && List.exists (fun m -> m = Ok Wire.Heartbeat) out
      | exception e ->
          QCheck.Test.fail_reportf "assembler raised %s" (Printexc.to_string e))

let arb_truncation =
  QCheck.make
    ~print:(fun (_, keep) -> Printf.sprintf "first %d line(s) kept" keep)
    QCheck.Gen.(
      gen_series >>= fun series ->
      let raw = serialize [ Wire.Telemetry series ] in
      let lines = List.length (String.split_on_char '\n' raw) - 1 in
      map (fun keep -> (raw, keep)) (0 -- lines))

let prop_truncated_frame_dropped =
  QCheck.Test.make
    ~name:"truncated telemetry frame: dropped whole, next message parses"
    ~count:500 arb_truncation (fun (raw, keep) ->
      let prefix =
        String.split_on_char '\n' raw |> List.filteri (fun i _ -> i < keep)
        |> List.map (fun l -> l ^ "\n")
        |> String.concat ""
      in
      let stream = prefix ^ serialize [ Wire.Heartbeat ] in
      match feed_all stream with
      | out ->
          List.for_all (function Ok _ -> true | Error _ -> false) out
          && List.exists (fun m -> m = Ok Wire.Heartbeat) out
      | exception e ->
          QCheck.Test.fail_reportf "assembler raised %s" (Printexc.to_string e))

(* A clean frame round-trips exactly, so the merge arithmetic upstream
   operates on what the worker actually sent. *)
let prop_clean_roundtrip =
  QCheck.Test.make ~name:"clean telemetry frame round-trips exactly"
    ~count:300
    (QCheck.make
       ~print:(fun s -> string_of_int (List.length s) ^ " series")
       gen_series)
    (fun series ->
      match feed_all (serialize [ Wire.Telemetry series ]) with
      | [ Ok (Wire.Telemetry got) ] -> got = series
      | _ -> false)

let differential_cases =
  List.map
    (fun ((name, _, _) as case) ->
      Alcotest.test_case name `Quick (check_totals_equal case))
    registry

let () =
  Alcotest.run "telemetry"
    [
      ("differential-totals", differential_cases);
      ( "profiler",
        [ Alcotest.test_case "profile series" `Quick check_profile_series ] );
      ( "frame-fuzz",
        [
          QCheck_alcotest.to_alcotest prop_clean_roundtrip;
          QCheck_alcotest.to_alcotest prop_corrupt_body_never_poisons;
          QCheck_alcotest.to_alcotest prop_truncated_frame_dropped;
        ] );
    ]
