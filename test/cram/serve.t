The serve daemon and its thin clients validate their flags up front:

  $ dampi serve
  serve needs --listen ADDR
  [2]

  $ dampi serve --listen unix:s.sock --parallel 0
  --parallel needs at least 1 job slot
  [2]

  $ dampi serve --listen bogus
  bad address "bogus": bad address "bogus" (expected unix:PATH or tcp:HOST:PORT)
  [2]

  $ dampi submit fig3
  submit needs --connect ADDR
  [2]

  $ dampi submit fig3 --connect unix:x.sock --on-disconnect bogus
  bad on-disconnect "bogus" (cancel|detach)
  [2]

  $ dampi fetch 3
  fetch needs --connect ADDR
  [2]

A live daemon with one job slot and a one-job queue: the first submit
runs (a bounded adlb exploration long enough to still be in flight
below), the second queues, and the third gets backpressure as a
one-line reject — nothing else changes:

  $ dampi serve --listen unix:serve.sock --state-dir st --parallel 1 --max-queue 1 > serve.log 2>&1 &
  $ pid=$!
  $ for i in $(seq 100); do test -S serve.sock && break; sleep 0.1; done

  $ dampi submit adlb --connect unix:serve.sock --np 12 -k 1 --max-runs 4000 -q --detach
  accepted id=1
  $ sleep 0.4
  $ dampi submit fig3 --connect unix:serve.sock -q --detach
  accepted id=2
  $ dampi submit fig4 --connect unix:serve.sock -q --detach
  reject queue-full
  [1]

SIGTERM drains gracefully: the running job checkpoints, the daemon exits
0, and every admitted-but-unfinished job is journaled for the next
daemon instance to re-admit exactly once:

  $ kill -TERM $pid
  $ wait $pid

  $ grep -c '^job ' st/journal
  2
