The bench driver knows the hot-path scenarios:

  $ dampi-bench nonsense
  unknown command "nonsense"
  usage: main.exe [all|fig5|fig6|fig8|fig9|table1|table2|ablation-clocks|
                   ablation-piggyback|ablation-mixing|parallel|distributed|fault-soak|prune|prune-gate|hotpath|hotpath-matmult|hotpath-gate|trace-overhead|micro] [--np N]
  [1]

The hot-path gate refuses to run without its baseline (it must be launched
from the repository root, where bench/baselines/hotpath.json lives) — and
it fails fast, before spending any bench time:

  $ dampi-bench hotpath-gate
  
  ================================================================
  Hot-path gate -- against bench/baselines/hotpath.json
  ================================================================
  FAIL: bench/baselines/hotpath.json not found (run from the repository root)
  [1]


A matmult-only hot-path measurement is quick enough to smoke here. The
walk is deterministic, so the interleaving and finding counts in the JSON
it leaves behind are exact (throughput and allocation columns are
machine-dependent and checked by the gate, not here):

  $ dampi-bench hotpath-matmult > /dev/null
  $ grep -o '"workload": "matmult", "np": 6, "interleavings": 600, "findings": 0' BENCH_hotpath.json
  "workload": "matmult", "np": 6, "interleavings": 600, "findings": 0
