The workload registry lists everything the paper evaluates:

  $ dampi list | head -8
  WORKLOAD       DESCRIPTION
  fig3           paper Fig. 3: wildcard race, bug on the alternate match
  fig4           paper Fig. 4: cross-coupled wildcards (Lamport imprecision)
  fig10          paper Fig. 10: clock escape before wait (monitor alert)
  deadlock       deterministic head-to-head deadlock
  matmult        master/slave matrix multiplication (Figs. 6, 8)
  samplesort     parallel sample sort (deterministic collective pipeline)
  adlb           mini-ADLB work-sharing library (Fig. 9)

Fig. 3: the bug is found in the guided replay (exit code 1 = errors found):

  $ dampi verify fig3 -q
  fig3 np=3: 2 interleavings, 1 findings
  [1]

Fig. 4 under the default (Lamport) clocks: the cross-coupled match is
missed; vector clocks recover it:

  $ dampi verify fig4 -q
  fig4 np=4: 1 interleavings, 0 findings

  $ dampi verify fig4 --clock vector -q
  fig4 np=4: 2 interleavings, 1 findings
  [1]

Fig. 10: the baseline raises the monitor alert but cannot force the match;
the dual-clock extension covers it:

  $ dampi verify fig10 -q
  fig10 np=3: 1 interleavings, 1 findings

  $ dampi verify fig10 --dual-clock -q
  fig10 np=3: 2 interleavings, 2 findings
  [1]

Bounded mixing caps exploration:

  $ dampi verify matmult -q --max-runs 100000 -k 0
  matmult np=5: 7 interleavings, 0 findings

A deterministic deadlock is reported on the first run:

  $ dampi verify deadlock -q
  deadlock np=2: 1 interleavings, 1 findings
  [1]

Schedules round-trip through files:

  $ dampi verify fig3 -q --dump-schedule fig3.sched
  fig3 np=3: 2 interleavings, 1 findings
  schedule of the first finding written to fig3.sched
  [1]

  $ cat fig3.sched
  # DAMPI epoch decisions
  np 3
  recv 1 0 2

  $ dampi replay fig3 fig3.sched | tail -2
  run crashed
    rank 1 crashed: Failure("fig3: received 33 \226\128\148 the interleaving-dependent bug")

One native run with MPI operation counts and runtime metric counters:

  $ dampi stats fig3
  fig3 np=3 (one native run)
  
  All 6 (2/proc)
  Send-Recv 3 (1/proc)
  Collective 0 (0.0/proc)
  Wait 3 (1/proc)
  mpi.deadlock_checks          0
  mpi.envelope_pool_reuses     1
  mpi.match_attempts           3
  mpi.queue_depth              count=2 sum=2 max=1
  mpi.wildcard_candidates      count=0 sum=0 max=0

Verification exports a Chrome trace_event timeline and a metrics document;
the required series (match attempts, piggyback bytes, queue waits, replay
durations) are all present:

  $ dampi verify fig3 -q --trace-out fig3.trace.json --metrics-out fig3.metrics.json
  fig3 np=3: 2 interleavings, 1 findings
  trace written to fig3.trace.json
  metrics written to fig3.metrics.json
  [1]

  $ grep -c '"traceEvents"' fig3.trace.json
  1

  $ grep -c '"ph":"X"' fig3.trace.json
  3

  $ for s in mpi.match_attempts dampi.piggyback_bytes sched.queue_wait_s \
  >   explorer.replay_wall_s explorer.replays; do
  >   grep -q "\"$s\"" fig3.metrics.json && echo "$s present"
  > done
  mpi.match_attempts present
  dampi.piggyback_bytes present
  sched.queue_wait_s present
  explorer.replay_wall_s present
  explorer.replays present

Replay writes the same documents for a single guided run:

  $ dampi replay fig3 fig3.sched --metrics-out replay.metrics.json | tail -1
  metrics written to replay.metrics.json

  $ grep -q '"mpi.match_attempts"' replay.metrics.json && echo found
  found

Fault injection is seed-deterministic: the same seed gives the same
summary, and transient faults absorbed by retries leave the canonical
result identical to the fault-free run:

  $ dampi verify adlb --np 6 -k 0 -q
  adlb np=6: 81 interleavings, 0 findings

  $ dampi verify adlb --np 6 -k 0 -q --fault-seed 7
  adlb np=6: 81 interleavings, 0 findings

  $ dampi verify adlb --np 6 -k 0 -q --fault-spec seed=7,sendfail=0.05,crash=0.02 --max-retries 4
  adlb np=6: 81 interleavings, 0 findings

A malformed fault spec is rejected (exit 2):

  $ dampi verify fig3 -q --fault-spec delay=2.0
  bad fault spec: delay must be a probability in [0,1], got "2.0"
  [2]

  $ dampi verify fig3 -q --fault-spec frobnicate=1
  bad fault spec: bad fault spec entry "frobnicate=1" (expected key=value with key in seed|delay|max-delay|sendfail|crash|wedge|rank)
  [2]

A watchdog budget cuts wedged replays without wedging the verifier; the
exhausted attempts are reported:

  $ dampi verify adlb --np 6 -k 0 --fault-spec seed=5,wedge=1.0 --max-replay-steps 20000 --max-retries 1 2>&1 | grep -E 'interleavings|timed out|retried'
  interleavings explored: 51
  replay attempts timed out: 84
  replay attempts retried: 54

--checkpoint writes a frontier checkpoint; a completed one resumes as a
pure re-report:

  $ dampi verify matmult -q -k 0 --checkpoint mm.ck
  matmult np=5: 7 interleavings, 0 findings

  $ grep -c '^# DAMPI checkpoint' mm.ck
  1

  $ grep '^complete' mm.ck
  complete 1

  $ dampi verify matmult -q -k 0 --checkpoint mm.ck
  resuming from mm.ck: 7 interleavings already explored, 0 frontier item(s)
  matmult np=5: 7 interleavings, 0 findings

A checkpoint only resumes under the configuration that wrote it:

  $ dampi verify matmult -q -k 1 --checkpoint mm.ck
  cannot resume from mm.ck: it belongs to a different configuration (dampi matmult np=5 clock=lamport k=0 dual=false prune=true, this run is dampi matmult np=5 clock=lamport k=1 dual=false prune=true)
  [2]

Sleep-set pruning is on by default; --no-prune explores the full tree and
the summary is identical (the differential harness proves the canonical
report equal), and --prefix-cache memoizes replays without changing it
either:

  $ dampi verify matmult -q -k 0 --no-prune
  matmult np=5: 7 interleavings, 0 findings

  $ dampi verify matmult -q -k 0 --prefix-cache
  matmult np=5: 7 interleavings, 0 findings

  $ dampi verify fig3 -q --no-prune --prefix-cache
  fig3 np=3: 2 interleavings, 1 findings
  [1]

The speed layers validate their inputs (exit 2):

  $ dampi verify fig3 -q --prefix-cache=0
  --prefix-cache needs a positive byte budget
  [2]

  $ dampi verify fig3 -q --engine isp --no-prune
  --no-prune and --prefix-cache only apply to the dampi engine (the isp baseline explores unpruned by construction)
  [2]

  $ dampi verify fig3 -q --engine isp --prefix-cache
  --no-prune and --prefix-cache only apply to the dampi engine (the isp baseline explores unpruned by construction)
  [2]

stats --explore runs a small pruned + cached exploration so the cache.*
and prune.* series carry real traffic:

  $ dampi stats adlb --explore | grep -E '^(cache\.(evictions|hits|misses)|prune\.)'
  cache.evictions              0
  cache.hits                   0
  cache.misses                 500
  prune.children_suppressed    0
  prune.duplicates             0

Corrupt or version-mismatched checkpoints are rejected with a clear error:

  $ echo garbage > bad.ck
  $ dampi verify matmult -q -k 0 --checkpoint bad.ck
  cannot resume from bad.ck: not a DAMPI checkpoint file
  [2]

  $ printf '# DAMPI checkpoint\nversion 99\n' > v99.ck
  $ dampi verify matmult -q -k 0 --checkpoint v99.ck
  cannot resume from v99.ck: checkpoint version 99 not supported (this build reads version 1)
  [2]

Distributed mode: --distribute spawns worker processes that speak the wire
protocol back to an in-process coordinator, and the summary (and exit
code) is identical to the in-process run:

  $ dampi verify fig3 --distribute 2 -q
  fig3 np=3: 2 interleavings, 1 findings
  [1]

  $ dampi verify fig4 --clock vector --distribute 2 -q
  fig4 np=4: 2 interleavings, 1 findings
  [1]

Conflicting or nonsensical job/worker combinations are rejected up front
(exit 2):

  $ dampi verify fig3 -q --jobs 0
  --jobs must be at least 1
  [2]

  $ dampi verify fig3 -q --distribute 0
  --distribute needs at least 1 worker
  [2]

  $ dampi verify fig3 -q --distribute 1 --workers unix:w.sock
  --distribute and --workers cannot be combined (spawn workers or dial already-running ones, not both)
  [2]

  $ dampi verify fig3 -q --distribute 2 --jobs 2
  --jobs does not combine with a distributed run (worker processes replace the in-process pool)
  [2]

  $ dampi verify fig3 -q --distribute 1 --stop-first
  --stop-first is not supported in distributed mode
  [2]

  $ dampi verify fig3 -q --workers bogus
  bad worker address "bogus": bad address "bogus" (expected unix:PATH or tcp:HOST:PORT)
  [2]

  $ dampi verify fig3 -q --engine isp --distribute 2
  distributed mode supports only the dampi engine
  [2]

Crash-tolerance flags apply only to distributed runs, and a respawning
coordinator needs a checkpoint to come back from:

  $ dampi verify fig3 -q --fallback-local
  --fallback-local only applies to a distributed run
  [2]

  $ echo sesame > token.txt
  $ dampi verify fig3 -q --auth-token token.txt
  --auth-token only applies to a distributed run
  [2]

  $ printf '' > empty.txt
  $ dampi verify fig3 -q --distribute 2 --auth-token empty.txt
  cannot read --auth-token empty.txt: auth token file empty.txt is empty
  [2]

  $ dampi verify fig3 -q --distribute 2 --checkpoint /dev/null --coordinator-respawn 0
  --coordinator-respawn needs at least 1 restart
  [2]

  $ dampi verify fig3 -q --distribute 2 --coordinator-respawn 2
  --coordinator-respawn requires --checkpoint (a respawned coordinator resumes from it)
  [2]

An authenticated distributed run: spawned workers inherit the token file
and the report is unchanged:

  $ dampi verify fig3 --distribute 2 -q --auth-token token.txt
  fig3 np=3: 2 interleavings, 1 findings
  [1]

A worker needs exactly one attachment mode; dialing a coordinator that
already finished (socket gone) is a clean no-op, not an error:

  $ dampi worker
  worker needs exactly one of --connect or --listen
  [2]

  $ dampi worker --connect unix:definitely-gone.sock

Cluster telemetry. The observability flags validate their inputs, and
--profile/--progress are dampi-engine concepts:

  $ dampi verify fig3 -q --metrics-out m.json --metrics-format yaml
  unknown --metrics-format "yaml" (json|openmetrics)
  [2]

  $ dampi verify fig3 -q --log-level shout
  bad --log-level: bad log level "shout" (expected quiet, error, warn, info or debug)
  [2]

  $ dampi verify fig3 -q --engine isp --profile
  --profile and --progress only apply to the dampi engine
  [2]

OpenMetrics export: counters as _total series, histograms as
_bucket/_sum/_count, per-worker series labeled, and the mandatory # EOF
terminator — ready for a Prometheus scrape:

  $ dampi verify fig3 -q --profile --metrics-out fig3.om --metrics-format openmetrics
  fig3 np=3: 2 interleavings, 1 findings
  metrics written to fig3.om
  [1]

  $ grep -c '^# TYPE' fig3.om > /dev/null && tail -1 fig3.om
  # EOF

  $ grep '^mpi_match_attempts_total ' fig3.om | wc -l
  1

  $ grep -q 'mpi_match_attempts_total{worker="w0"}' fig3.om && echo labeled
  labeled

  $ grep -q '^profile_match_loop_s_count' fig3.om && echo profiled
  profiled

The --progress ticker draws on stderr only; the canonical report and
exit code are untouched:

  $ dampi verify fig3 -q --progress 2> /dev/null
  fig3 np=3: 2 interleavings, 1 findings
  [1]

A worker leaves its local metrics snapshot behind on every exit path,
even when the coordinator is already gone:

  $ dampi worker --connect unix:also-gone.sock --metrics-out worker-metrics.json
  $ cat worker-metrics.json
  {
    "metrics": {}
  }

The top observer validates its address and reports an unreachable
coordinator rather than hanging:

  $ dampi top --connect nonsense
  bad address "nonsense": bad address "nonsense" (expected unix:PATH or tcp:HOST:PORT)
  [2]

A never-listening address is a usage-class failure (exit 2), one line, no
backtrace:

  $ dampi top --connect unix:no-coordinator.sock --once
  cannot connect to unix:no-coordinator.sock: No such file or directory (is the coordinator running?)
  [2]

  $ dampi top --connect tcp:no-such-host.invalid:9999 --once
  cannot resolve tcp:no-such-host.invalid:9999: no such host or address
  [2]
