(* The distributed mode's acceptance bar: a coordinator leasing the
   frontier to worker processes over sockets must produce the same
   canonical report as the sequential depth-first walk — for every
   workload of the registry, and even when a worker is killed mid-run and
   its lease re-leased to a survivor. Workers here are in-process domains
   speaking the real wire protocol over socketpairs (plus one genuinely
   forked process for the kill test), so the whole
   Wire/Coordinator/Remote_worker stack is exercised without shelling
   out. *)

module Explorer = Dampi.Explorer
module Report = Dampi.Report
module State = Dampi.State
module Checkpoint = Dampi.Checkpoint
module Coordinator = Dampi.Coordinator
module Remote_worker = Dampi.Remote_worker
module Wire = Dampi.Wire
module Decisions = Dampi.Decisions

(* The CLI registry, sized down so exhaustive exploration stays small
   (mirrors test_explorer_parallel). *)
let registry : (string * int * State.config * (unit -> Mpi.Mpi_intf.program)) list
    =
  let default = State.default_config in
  let vector = State.make_config ~clock:(module Clocks.Vector) () in
  let dual = State.make_config ~dual_clock:true () in
  let k0 = State.make_config ~mixing_bound:0 () in
  [
    ("fig3", 3, default, fun () -> Workloads.Patterns.fig3);
    ("fig4", 4, default, fun () -> Workloads.Patterns.fig4);
    ("fig4/vector", 4, vector, fun () -> Workloads.Patterns.fig4);
    ("fig10", 3, default, fun () -> Workloads.Patterns.fig10);
    ("fig10/dual", 3, dual, fun () -> Workloads.Patterns.fig10);
    ("deadlock", 2, default, fun () -> Workloads.Patterns.head_to_head);
    ( "matmult",
      5,
      default,
      fun () ->
        Workloads.Matmult.program
          ~params:
            { Workloads.Matmult.default_params with n = 8; rows_per_task = 2 }
          () );
    ("samplesort", 6, default, fun () -> Workloads.Samplesort.program ());
    ("adlb/k0", 6, k0, fun () -> Workloads.Adlb.program ());
    ( "parmetis",
      4,
      default,
      fun () ->
        Workloads.Parmetis.program
          ~params:{ Workloads.Parmetis.default_params with scale = 0.01 }
          () );
  ]
  @ List.map
      (fun s ->
        ( s.Workloads.Skeleton.name,
          8,
          default,
          fun () -> Workloads.Skeleton.program s ))
      (Workloads.Nas.all @ Workloads.Specmpi.all)

(* The worker's resolve function — what the CLI builds from its registry,
   here built from ours. The job's np must agree with the registry's. *)
let resolve (job : Wire.job) =
  match
    List.find_opt (fun (n, _, _, _) -> n = job.Wire.workload) registry
  with
  | None -> Error (Printf.sprintf "unknown workload %S" job.Wire.workload)
  | Some (_, np, state_config, build) ->
      if job.Wire.np <> np then
        Error (Printf.sprintf "np mismatch: job says %d, have %d" job.Wire.np np)
      else
        Ok
          {
            Remote_worker.np;
            runner =
              Explorer.dampi_runner
                { Explorer.default_config with state_config }
                ~np (build ());
            rb = Explorer.default_robustness;
            prune = false;
          }

let signatures (report : Report.t) =
  List.map
    (fun (f : Report.finding) -> Report.error_signature f.Report.error)
    report.Report.findings
  |> List.sort_uniq compare

let verify_seq ~np ~state_config program =
  Explorer.verify
    ~config:{ Explorer.default_config with state_config }
    ~np program

(* Spawn [n] in-process workers, each a domain serving one end of a
   socketpair; returns the coordinator-side fds and the join handle. *)
let spawn_workers ?auth ?(resolve = resolve) n =
  List.init n (fun _ ->
      let c, w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let d =
        Domain.spawn (fun () -> ignore (Remote_worker.serve ?auth ~resolve w))
      in
      (c, d))

(* Tests keep the rejoin grace short: with [Fds] attach there is no listen
   socket for a lost worker to redial, so waiting out the default grace
   only slows the refund path down. *)
let setup_of ~name ~np ~fds ?(lease_size = 2) ?(rejoin_grace = 0.05) ?auth ()
    =
  {
    Coordinator.attach = Coordinator.Fds fds;
    job = { Wire.workload = name; np; params = [] };
    lease_size;
    heartbeat_timeout = Coordinator.default_heartbeat_timeout;
    join_timeout = Coordinator.default_join_timeout;
    rejoin_grace;
    auth;
    net_fault = None;
    outq_budget = Coordinator.default_outq_budget;
  }

let check_same name (seq : Report.t) (dist : Report.t) =
  Alcotest.(check (list string))
    (name ^ ": no harness failures")
    []
    (List.map
       (fun (h : Report.harness_failure) -> h.Report.hf_message)
       dist.Report.harness_failures);
  Alcotest.(check (list string))
    (name ^ ": same finding signatures")
    (signatures seq) (signatures dist);
  Alcotest.(check int)
    (name ^ ": same interleaving count")
    seq.Report.interleavings dist.Report.interleavings;
  Alcotest.(check int)
    (name ^ ": same bounded epochs")
    seq.Report.bounded_epochs dist.Report.bounded_epochs;
  Alcotest.(check int)
    (name ^ ": same wildcards analyzed")
    seq.Report.wildcards_analyzed dist.Report.wildcards_analyzed;
  (* The canonical report also agrees on each finding's reproduction
     schedule and virtual time, not just its signature. *)
  Alcotest.(check (list string))
    (name ^ ": same canonical findings")
    (List.map
       (fun (f : Report.finding) ->
         Format.asprintf "%a" Report.pp_finding { f with Report.run_index = 0 })
       seq.Report.findings)
    (List.map
       (fun (f : Report.finding) ->
         Format.asprintf "%a" Report.pp_finding { f with Report.run_index = 0 })
       dist.Report.findings);
  Alcotest.(check (float 1e-9))
    (name ^ ": same total virtual time")
    seq.Report.total_virtual_time dist.Report.total_virtual_time

let check_equivalence ((name, np, state_config, build) as _case) () =
  let seq = verify_seq ~np ~state_config (build ()) in
  let workers = spawn_workers 2 in
  let setup =
    setup_of ~name ~np ~fds:(List.map fst workers) ()
  in
  let dist =
    Explorer.verify
      ~config:{ Explorer.default_config with state_config }
      ~distribute:setup ~np (build ())
  in
  List.iter (fun (_, d) -> Domain.join d) workers;
  check_same name seq dist

(* A worker SIGKILLed mid-exploration forfeits its lease; the coordinator
   re-leases to the survivor and the canonical report is unchanged. The
   victim is a genuinely separate process (so the kill severs the socket
   and exercises the EOF → re-lease path): this very test binary re-exec'd
   in worker mode (see the [DAMPI_TEST_WORKER] branch of [main]), with its
   socket passed as stdin — [Unix.fork] is off limits once any domain has
   ever been created, and an earlier test's domains would count. *)
let spawn_victim () =
  let c1, w1 = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec c1;
  let victim =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      (Array.append (Unix.environment ()) [| "DAMPI_TEST_WORKER=slow" |])
      w1 Unix.stdout Unix.stderr
  in
  Unix.close w1;
  (c1, victim)

let test_worker_kill () =
  let name, np, state_config, build =
    List.find (fun (n, _, _, _) -> n = "adlb/k0") registry
  in
  let seq = verify_seq ~np ~state_config (build ()) in
  let c1, victim = spawn_victim () in
  let c2, w2 = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let survivor =
    Domain.spawn (fun () -> ignore (Remote_worker.serve ~resolve w2))
  in
  (* The victim leases its first item within milliseconds of the handshake
     and needs 0.5s to replay it, so a kill at 0.15s lands mid-replay with
     the lease guaranteed outstanding (the fast survivor cannot finish the
     whole frontier sooner than that lease resolves). *)
  let killer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.15;
        try Unix.kill victim Sys.sigkill with Unix.Unix_error _ -> ())
  in
  let setup = setup_of ~name ~np ~fds:[ c1; c2 ] ~lease_size:1 () in
  let dist =
    Explorer.verify
      ~config:{ Explorer.default_config with state_config }
      ~distribute:setup ~np (build ())
  in
  Domain.join killer;
  Domain.join survivor;
  ignore (Unix.waitpid [] victim);
  check_same "adlb/k0 (worker killed)" seq dist;
  (* The re-lease actually happened: the coordinator metrics shard
     recorded at least one released item. *)
  let series name =
    List.fold_left
      (fun acc (n, s) ->
        match s with
        | Obs.Metrics.Counter v when n = name -> acc + v
        | _ -> acc)
      0 dist.Report.metrics
  in
  Alcotest.(check bool)
    "items were re-leased after the kill" true
    (series "coordinator.releases" > 0)

(* Losing every worker mid-run is an interruption, not silent data loss:
   the run reports a harness failure and preserves the frontier. *)
let test_all_workers_lost () =
  let name, np, state_config, build =
    List.find (fun (n, _, _, _) -> n = "adlb/k0") registry
  in
  let seq = verify_seq ~np ~state_config (build ()) in
  (* One worker that dies after its first replay: serve a connection whose
     far end we close from a watchdog domain shortly into the run. *)
  let c, w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let slow_resolve job =
    match resolve job with
    | Error _ as e -> e
    | Ok r ->
        Ok
          {
            r with
            Remote_worker.runner =
              (fun ~ctx plan ~fork_index ->
                Unix.sleepf 0.05;
                r.Remote_worker.runner ~ctx plan ~fork_index);
          }
  in
  let worker =
    Domain.spawn (fun () -> ignore (Remote_worker.serve ~resolve:slow_resolve w))
  in
  let closer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.3;
        try Unix.shutdown c Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  in
  let setup = setup_of ~name ~np ~fds:[ c ] ~lease_size:1 () in
  let dist =
    Explorer.verify
      ~config:{ Explorer.default_config with state_config }
      ~distribute:setup ~np (build ())
  in
  Domain.join closer;
  Domain.join worker;
  Alcotest.(check bool)
    "harness failure reported" true
    (dist.Report.harness_failures <> []);
  Alcotest.(check bool)
    "exploration did not complete" true
    (dist.Report.interleavings < seq.Report.interleavings)

(* The CLI's two socket shapes, end to end over real addresses:
   [Listen] (what [--distribute] uses: the coordinator binds, [ready]
   starts connecting workers) and [Dial] (what [--workers] uses: workers
   already listening, the coordinator dials in). *)
let sock_path tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dampi-test-%s-%d.sock" tag (Unix.getpid ()))

let test_listen_attach () =
  let name, np, state_config, build =
    List.find (fun (n, _, _, _) -> n = "fig3") registry
  in
  let seq = verify_seq ~np ~state_config (build ()) in
  let path = sock_path "listen" in
  let doms = ref [] in
  let ready addr =
    for _ = 1 to 2 do
      doms :=
        Domain.spawn (fun () ->
            match Remote_worker.serve_addr ~resolve (`Connect addr) with
            | Ok () -> ()
            | Error e -> failwith e)
        :: !doms
    done
  in
  let setup =
    {
      Coordinator.attach =
        Coordinator.Listen { addr = Wire.Unix_sock path; ready };
      job = { Wire.workload = name; np; params = [] };
      lease_size = 1;
      heartbeat_timeout = Coordinator.default_heartbeat_timeout;
      join_timeout = Coordinator.default_join_timeout;
      rejoin_grace = 0.05;
      auth = None;
      net_fault = None;
      outq_budget = Coordinator.default_outq_budget;
    }
  in
  let dist =
    Explorer.verify
      ~config:{ Explorer.default_config with state_config }
      ~distribute:setup ~np (build ())
  in
  List.iter Domain.join !doms;
  check_same "fig3 (listen attach)" seq dist

let test_dial_attach () =
  let name, np, state_config, build =
    List.find (fun (n, _, _, _) -> n = "fig4") registry
  in
  let seq = verify_seq ~np ~state_config (build ()) in
  let path = sock_path "dial" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let worker =
    Domain.spawn (fun () ->
        match
          Remote_worker.serve_addr ~resolve (`Listen (Wire.Unix_sock path))
        with
        | Ok () -> ()
        | Error e -> failwith e)
  in
  (* Wait for the worker to bind before dialing. *)
  let rec wait n =
    if not (Sys.file_exists path) then
      if n = 0 then Alcotest.fail "worker never bound its socket"
      else (
        Unix.sleepf 0.02;
        wait (n - 1))
  in
  wait 250;
  Unix.sleepf 0.05;
  let setup =
    {
      Coordinator.attach = Coordinator.Dial [ Wire.Unix_sock path ];
      job = { Wire.workload = name; np; params = [] };
      lease_size = 2;
      heartbeat_timeout = Coordinator.default_heartbeat_timeout;
      join_timeout = Coordinator.default_join_timeout;
      rejoin_grace = 0.05;
      auth = None;
      net_fault = None;
      outq_budget = Coordinator.default_outq_budget;
    }
  in
  let dist =
    Explorer.verify
      ~config:{ Explorer.default_config with state_config }
      ~distribute:setup ~np (build ())
  in
  Domain.join worker;
  check_same "fig4 (dial attach)" seq dist

(* A worker whose resolve rejects the job surfaces as a lost worker, not a
   hang. *)
let test_resolve_failure () =
  let name, np, state_config, build =
    List.find (fun (n, _, _, _) -> n = "fig3") registry
  in
  let bad_resolve (_ : Wire.job) = Error "no such workload here" in
  let workers = spawn_workers ~resolve:bad_resolve 1 in
  let setup = setup_of ~name ~np ~fds:(List.map fst workers) () in
  let dist =
    Explorer.verify
      ~config:{ Explorer.default_config with state_config }
      ~distribute:setup ~np (build ())
  in
  List.iter (fun (_, d) -> Domain.join d) workers;
  Alcotest.(check bool)
    "harness failure reported" true
    (dist.Report.harness_failures <> [])

let metric_sum (report : Report.t) name =
  List.fold_left
    (fun acc (n, s) ->
      match s with
      | Obs.Metrics.Counter v when n = name -> acc + v
      | _ -> acc)
    0 report.Report.metrics

(* ---- crash tolerance ---- *)

(* Workers behind a shared secret: the right token verifies as usual, the
   wrong one is refused with a one-line reject (and the run, having no
   other worker, errors out instead of hanging). *)
let test_auth_roundtrip () =
  let name, np, state_config, build =
    List.find (fun (n, _, _, _) -> n = "fig3") registry
  in
  let seq = verify_seq ~np ~state_config (build ()) in
  let workers = spawn_workers ~auth:"open sesame" 2 in
  let setup =
    setup_of ~name ~np ~fds:(List.map fst workers) ~auth:"open sesame" ()
  in
  let dist =
    Explorer.verify
      ~config:{ Explorer.default_config with state_config }
      ~distribute:setup ~np (build ())
  in
  List.iter (fun (_, d) -> Domain.join d) workers;
  check_same "fig3 (authenticated)" seq dist

let test_auth_mismatch () =
  let name, np, state_config, build =
    List.find (fun (n, _, _, _) -> n = "fig3") registry
  in
  let c, w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let worker =
    Domain.spawn (fun () -> Remote_worker.serve ~auth:"wrong" ~resolve w)
  in
  let setup = setup_of ~name ~np ~fds:[ c ] ~auth:"right" () in
  let dist =
    Explorer.verify
      ~config:{ Explorer.default_config with state_config }
      ~distribute:setup ~np (build ())
  in
  (match Domain.join worker with
  | `Rejected reason ->
      Alcotest.(check string)
        "reject names the cause" "authentication failed" reason
  | `Shutdown | `Disconnected ->
      Alcotest.fail "worker should have been rejected");
  Alcotest.(check bool)
    "run lost its only worker" true
    (dist.Report.harness_failures <> [])

(* An old (proto=1) worker gets one versioned reject line, not a hang: the
   scripted peer speaks the previous dialect raw and reads the answer. *)
let test_proto1_rejected () =
  let name, np, state_config, build =
    List.find (fun (n, _, _, _) -> n = "fig3") registry
  in
  let c, w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let scripted =
    Domain.spawn (fun () ->
        let oc = Unix.out_channel_of_descr w in
        let ic = Unix.in_channel_of_descr w in
        output_string oc "hello proto=1 id=old%20timer\n";
        flush oc;
        let answer = try input_line ic with End_of_file -> "<eof>" in
        let eof = try ignore (input_line ic); false with End_of_file -> true in
        (try Unix.close w with Unix.Unix_error _ -> ());
        (answer, eof))
  in
  let setup = setup_of ~name ~np ~fds:[ c ] () in
  let dist =
    Explorer.verify
      ~config:{ Explorer.default_config with state_config }
      ~distribute:setup ~np (build ())
  in
  let answer, eof = Domain.join scripted in
  let prefix = Printf.sprintf "reject proto=%d " Wire.proto_version in
  Alcotest.(check bool)
    (Printf.sprintf "versioned reject line (got %S)" answer)
    true
    (String.length answer > String.length prefix
    && String.sub answer 0 (String.length prefix) = prefix);
  Alcotest.(check bool) "connection closed after the reject" true eof;
  Alcotest.(check bool)
    "run lost its only worker" true
    (dist.Report.harness_failures <> [])

(* A listening coordinator no worker ever joins gives up after the join
   timeout — quickly, and as an error rather than a hang. *)
let test_join_timeout () =
  let name, np, state_config, build =
    List.find (fun (n, _, _, _) -> n = "fig3") registry
  in
  let path = sock_path "join" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let setup =
    {
      Coordinator.attach =
        Coordinator.Listen { addr = Wire.Unix_sock path; ready = ignore };
      job = { Wire.workload = name; np; params = [] };
      lease_size = 1;
      heartbeat_timeout = Coordinator.default_heartbeat_timeout;
      join_timeout = 0.2;
      rejoin_grace = 0.0;
      auth = None;
      net_fault = None;
      outq_budget = Coordinator.default_outq_budget;
    }
  in
  let t0 = Unix.gettimeofday () in
  let dist =
    Explorer.verify
      ~config:{ Explorer.default_config with state_config }
      ~distribute:setup ~np (build ())
  in
  Alcotest.(check bool)
    "harness failure reported" true
    (dist.Report.harness_failures <> []);
  Alcotest.(check bool)
    "gave up promptly" true
    (Unix.gettimeofday () -. t0 < 10.0)

(* Graceful degradation: same worker-loss scenario as
   [test_all_workers_lost], but with the local fallback the run completes
   and the canonical report is unchanged. *)
let test_fallback_local () =
  let name, np, state_config, build =
    List.find (fun (n, _, _, _) -> n = "adlb/k0") registry
  in
  let seq = verify_seq ~np ~state_config (build ()) in
  let c, w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let slow_resolve job =
    match resolve job with
    | Error _ as e -> e
    | Ok r ->
        Ok
          {
            r with
            Remote_worker.runner =
              (fun ~ctx plan ~fork_index ->
                Unix.sleepf 0.05;
                r.Remote_worker.runner ~ctx plan ~fork_index);
          }
  in
  let worker =
    Domain.spawn (fun () ->
        ignore (Remote_worker.serve ~resolve:slow_resolve w))
  in
  let closer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.3;
        try Unix.shutdown c Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  in
  let setup = setup_of ~name ~np ~fds:[ c ] ~lease_size:1 () in
  let dist =
    Explorer.verify
      ~config:{ Explorer.default_config with state_config }
      ~distribute:setup ~fallback_local:true ~np (build ())
  in
  Domain.join closer;
  Domain.join worker;
  check_same "adlb/k0 (fallback to local)" seq dist;
  Alcotest.(check bool)
    "fallback was taken and counted" true
    (metric_sum dist "coordinator.fallbacks" > 0)

(* The exactly-once guarantee under the nastiest rejoin: a worker leases
   items, goes silent past the heartbeat timeout (the lease is refunded
   and re-run by the survivor), then rejoins with its stale epoch and
   flushes a poisoned results frame for the old lease. The frame must be
   read whole, recognised as fenced, and discarded — the canonical report
   stays identical to jobs=1 even though the frame claims a virtual time
   of 1e9. *)
let test_zombie_fenced () =
  let name, np, state_config, build =
    List.find (fun (n, _, _, _) -> n = "adlb/k0") registry
  in
  let seq = verify_seq ~np ~state_config (build ()) in
  let path = sock_path "zombie" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let doms = ref [] in
  let slow_resolve job =
    match resolve job with
    | Error _ as e -> e
    | Ok r ->
        Ok
          {
            r with
            Remote_worker.runner =
              (fun ~ctx plan ~fork_index ->
                Unix.sleepf 0.04;
                r.Remote_worker.runner ~ctx plan ~fork_index);
          }
  in
  let zombie addr () =
    let dial () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Wire.sockaddr_of_addr addr);
      (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd, fd)
    in
    let expect what = function
      | Ok m -> m
      | Error e -> failwith (Printf.sprintf "zombie: %s: %s" what e)
    in
    let ic, oc, fd = dial () in
    Wire.write_to_coord oc
      (Wire.Hello
         {
           proto = Wire.proto_version;
           id = "zombie";
           session = "zombie-session";
           epoch = 0;
           pending = None;
           role = None;
         });
    let old_epoch =
      match expect "welcome" (Wire.read_to_worker ic) with
      | Wire.Welcome { epoch } -> epoch
      | _ -> failwith "zombie: expected welcome"
    in
    (match expect "job" (Wire.read_to_worker ic) with
    | Wire.Job _ -> ()
    | _ -> failwith "zombie: expected job");
    Wire.write_to_coord oc Wire.Ready;
    let lease_id, items =
      match expect "lease" (Wire.read_to_worker ic) with
      | Wire.Lease { lease_id; items } -> (lease_id, items)
      | _ -> failwith "zombie: expected lease"
    in
    (* Silence past the heartbeat timeout: the coordinator declares this
       session lost and (grace 0) refunds the lease to the survivor. *)
    Unix.sleepf 0.5;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (* Rejoin with the stale epoch and flush the poisoned frame. *)
    let ic2, oc2, fd2 = dial () in
    Wire.write_to_coord oc2
      (Wire.Hello
         {
           proto = Wire.proto_version;
           id = "zombie";
           session = "zombie-session";
           epoch = old_epoch;
           pending = Some lease_id;
           role = None;
         });
    (match expect "re-welcome" (Wire.read_to_worker ic2) with
    | Wire.Welcome { epoch } ->
        if epoch <= old_epoch then
          failwith "zombie: rejoin did not advance the fencing epoch"
    | _ -> failwith "zombie: expected second welcome");
    (match expect "re-job" (Wire.read_to_worker ic2) with
    | Wire.Job _ -> ()
    | _ -> failwith "zombie: expected second job");
    Wire.write_to_coord oc2 Wire.Ready;
    let runs =
      List.map
        (fun it ->
          {
            Wire.key = Checkpoint.item_key it;
            payload =
              Some
                {
                  Wire.vtime = 1e9;
                  bounded = 0;
                  errors = [];
                  children = [];
                  pruned = 0;
                };
            timeouts = 0;
            retries = 0;
            transients = 0;
          })
        items
    in
    Wire.write_to_coord oc2
      (Wire.Results { epoch = old_epoch; lease_id; runs });
    (* Stay connected until dismissed so the frame is provably processed
       (not lost to a racing close). *)
    (try
       let rec drain () =
         match Wire.read_to_worker ic2 with
         | Ok Wire.Shutdown | Ok Wire.Detach | Error _ -> ()
         | Ok _ -> drain ()
       in
       drain ()
     with _ -> ());
    try Unix.close fd2 with Unix.Unix_error _ -> ()
  in
  let ready addr =
    doms :=
      Domain.spawn (fun () ->
          match Remote_worker.serve_addr ~resolve:slow_resolve (`Connect addr) with
          | Ok () -> ()
          | Error e -> failwith e)
      :: Domain.spawn (zombie addr)
      :: !doms
  in
  let setup =
    {
      Coordinator.attach =
        Coordinator.Listen { addr = Wire.Unix_sock path; ready };
      job = { Wire.workload = name; np; params = [] };
      lease_size = 1;
      heartbeat_timeout = 0.2;
      join_timeout = Coordinator.default_join_timeout;
      rejoin_grace = 0.0;
      auth = None;
      net_fault = None;
      outq_budget = Coordinator.default_outq_budget;
    }
  in
  let dist =
    Explorer.verify
      ~config:{ Explorer.default_config with state_config }
      ~distribute:setup ~np (build ())
  in
  List.iter Domain.join !doms;
  check_same "adlb/k0 (fenced zombie)" seq dist;
  Alcotest.(check bool)
    "the rejoin was recorded" true
    (metric_sum dist "coordinator.reconnects" > 0);
  Alcotest.(check bool)
    "the stale frame was fenced, not counted" true
    (metric_sum dist "coordinator.fenced" > 0)

(* The tentpole end to end, in-process: interrupt a distributed run (the
   stand-in for SIGKILLing the coordinator), let its worker outlive it and
   redial, then restart the coordinator from the checkpoint at the same
   address. The resumed run re-admits the worker (fencing the dead
   coordinator's epochs) and finishes with the canonical jobs=1 report. *)
let test_coordinator_restart () =
  let name, np, state_config, build =
    List.find (fun (n, _, _, _) -> n = "adlb/k0") registry
  in
  let seq = verify_seq ~np ~state_config (build ()) in
  let ckpt = Filename.temp_file "dampi-restart" ".ckpt" in
  Sys.remove ckpt;
  let path = sock_path "restart" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let addr = Wire.Unix_sock path in
  let rb interrupt_after =
    {
      Explorer.default_robustness with
      checkpoint = Some { Explorer.path = ckpt; every = 1; label = name };
      interrupt_after;
    }
  in
  let config interrupt_after =
    {
      Explorer.default_config with
      state_config;
      robustness = rb interrupt_after;
    }
  in
  let worker = ref None in
  let ready _addr =
    worker :=
      Some
        (Domain.spawn (fun () ->
             match
               Remote_worker.serve_addr
                 ~reconnect:
                   { Remote_worker.max_redials = 400; backoff = 0.02; seed = 7 }
                 ~resolve (`Connect addr)
             with
             | Ok () -> ()
             | Error e -> failwith e))
  in
  let setup ready =
    {
      Coordinator.attach = Coordinator.Listen { addr; ready };
      job = { Wire.workload = name; np; params = [] };
      lease_size = 1;
      heartbeat_timeout = Coordinator.default_heartbeat_timeout;
      join_timeout = Coordinator.default_join_timeout;
      rejoin_grace = 0.5;
      auth = None;
      net_fault = None;
      outq_budget = Coordinator.default_outq_budget;
    }
  in
  (* First life: explore a few replays, then die (interrupt), leaving the
     checkpoint behind and the worker redialling. *)
  let first =
    Explorer.verify ~config:(config (Some 4)) ~distribute:(setup ready) ~np
      (build ())
  in
  Alcotest.(check bool) "first life was interrupted" true
    first.Report.interrupted;
  Alcotest.(check bool)
    "first life left work behind" true
    (first.Report.interleavings < seq.Report.interleavings);
  let resume =
    match Checkpoint.load ckpt with
    | Ok c -> c
    | Error e -> Alcotest.fail ("checkpoint did not load: " ^ e)
  in
  Alcotest.(check bool)
    "checkpoint carries the fencing epoch" true
    (resume.Checkpoint.epoch > 0);
  (* Second life: same address, resumed from the checkpoint; the worker's
     redial loop finds it. *)
  let dist =
    Explorer.verify ~config:(config None) ~resume
      ~distribute:(setup ignore) ~np (build ())
  in
  (match !worker with Some d -> Domain.join d | None -> ());
  check_same "adlb/k0 (coordinator restarted)" seq dist

(* ---- wire unit tests ---- *)

let test_addr_parsing () =
  (match Wire.addr_of_string "unix:/tmp/x.sock" with
  | Ok (Wire.Unix_sock "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix addr");
  (match Wire.addr_of_string "tcp:localhost:7777" with
  | Ok (Wire.Tcp ("localhost", 7777)) -> ()
  | _ -> Alcotest.fail "tcp addr");
  List.iter
    (fun s ->
      match Wire.addr_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s))
    [ ""; "unix:"; "tcp:host"; "tcp:host:notaport"; "ftp:x" ];
  List.iter
    (fun a ->
      Alcotest.(check bool)
        "addr round-trips" true
        (Wire.addr_of_string (Wire.addr_to_string a) = Ok a))
    [ Wire.Unix_sock "/tmp/a b.sock"; Wire.Tcp ("10.0.0.1", 9) ]

(* Serialize worker→coordinator messages through a pipe, then reassemble
   them with the select-loop assembler fed one byte at a time — the worst
   possible framing — and check structural equality. *)
let test_assembler_byte_at_a_time () =
  let item =
    {
      Checkpoint.prefix =
        [
          {
            Decisions.owner = 0;
            epoch_id = 1;
            src = 2;
            kind = Dampi.Epoch.Wildcard_recv;
          };
        ];
      choice =
        {
          Decisions.owner = 1;
          epoch_id = 3;
          src = 0;
          kind = Dampi.Epoch.Wildcard_probe;
        };
      sleep =
        [
          {
            Dampi.Epoch.s_owner = 2;
            s_id = 5;
            s_kind = Dampi.Epoch.Wildcard_recv;
            s_ctx = 0;
            s_tag = -1;
            s_matched = 3;
            s_alternatives = [ 0; 1 ];
            s_expandable = true;
          };
        ];
    }
  in
  let msgs =
    [
      Wire.Hello
        {
          proto = Wire.proto_version;
          id = "worker one";
          session = "sess one";
          epoch = 3;
          pending = Some 7;
          role = None;
        };
      Wire.Hello
        {
          proto = Wire.proto_version;
          id = "fresh";
          session = "";
          epoch = 0;
          pending = None;
          role = None;
        };
      Wire.Auth "deadbeefdeadbeefdeadbeefdeadbeef";
      Wire.Ready;
      Wire.Heartbeat;
      Wire.Results
        {
          epoch = 3;
          lease_id = 7;
          runs =
            [
              {
                Wire.key = Checkpoint.item_key item;
                payload =
                  Some
                    {
                      Wire.vtime = 1.25e-3;
                      bounded = 2;
                      errors = [];
                      children = [ item ];
                      pruned = 4;
                    };
                timeouts = 1;
                retries = 2;
                transients = 0;
              };
              {
                Wire.key = "-";
                payload = None;
                timeouts = 3;
                retries = 3;
                transients = 1;
              };
            ];
        };
      Wire.Failed "it broke | badly\nvery badly";
    ]
  in
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w in
  List.iter (Wire.write_to_coord oc) msgs;
  close_out oc;
  let ic = Unix.in_channel_of_descr r in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  close_in ic;
  let raw = Buffer.contents buf in
  let a = Wire.assembler () in
  let out = ref [] in
  String.iter
    (fun ch ->
      let b = Bytes.make 1 ch in
      List.iter
        (function
          | Ok m -> out := m :: !out
          | Error e -> Alcotest.fail ("assembler error: " ^ e))
        (Wire.feed a b 1))
    raw;
  Alcotest.(check int) "all messages reassembled" (List.length msgs)
    (List.length !out);
  Alcotest.(check bool)
    "messages survive the wire intact" true
    (List.rev !out = msgs)

let test_assembler_rejects_garbage () =
  let a = Wire.assembler () in
  let b = Bytes.of_string "definitely not a frame\n" in
  match Wire.feed a b (Bytes.length b) with
  | [ Error _ ] -> ()
  | _ -> Alcotest.fail "garbage should yield a protocol error"

(* Worker mode for the kill test: serve the wire protocol on stdin (a
   socketpair end inherited from the spawning test), replaying slowly so
   the parent can kill this process with a lease reliably outstanding. *)
let () =
  match Sys.getenv_opt "DAMPI_TEST_WORKER" with
  | Some _ ->
      let slow job =
        match resolve job with
        | Error _ as e -> e
        | Ok r ->
            Ok
              {
                r with
                Remote_worker.runner =
                  (fun ~ctx plan ~fork_index ->
                    Unix.sleepf 0.5;
                    r.Remote_worker.runner ~ctx plan ~fork_index);
              }
      in
      ignore (Remote_worker.serve ~resolve:slow Unix.stdin);
      exit 0
  | None -> ()

let () =
  Alcotest.run "distributed"
    [
      ( "wire",
        [
          Alcotest.test_case "addresses" `Quick test_addr_parsing;
          Alcotest.test_case "byte-at-a-time reassembly" `Quick
            test_assembler_byte_at_a_time;
          Alcotest.test_case "garbage rejected" `Quick
            test_assembler_rejects_garbage;
        ] );
      ( "jobs=1 vs distribute=2",
        List.map
          (fun ((name, _, _, _) as case) ->
            Alcotest.test_case name `Quick (check_equivalence case))
          registry );
      ( "fault tolerance",
        [
          Alcotest.test_case "worker killed mid-run" `Quick test_worker_kill;
          Alcotest.test_case "all workers lost" `Quick test_all_workers_lost;
          Alcotest.test_case "resolve failure" `Quick test_resolve_failure;
        ] );
      ( "crash tolerance",
        [
          Alcotest.test_case "authenticated run" `Quick test_auth_roundtrip;
          Alcotest.test_case "auth mismatch rejected" `Quick
            test_auth_mismatch;
          Alcotest.test_case "proto=1 peer rejected" `Quick
            test_proto1_rejected;
          Alcotest.test_case "join timeout" `Quick test_join_timeout;
          Alcotest.test_case "fallback to local pool" `Quick
            test_fallback_local;
          Alcotest.test_case "zombie worker fenced" `Quick test_zombie_fenced;
          Alcotest.test_case "coordinator restart from checkpoint" `Quick
            test_coordinator_restart;
        ] );
      ( "attach modes",
        [
          Alcotest.test_case "listen + connect" `Quick test_listen_attach;
          Alcotest.test_case "dial" `Quick test_dial_attach;
        ] );
    ]
