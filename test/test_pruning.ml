(* The differential equivalence harness for the two speed layers: sleep-set
   pruning (Prune) and the replay-prefix cache (Prefix_cache).

   The correctness bar — the only reason either optimization is allowed to
   exist — is that they change the COST of exploration, never its RESULT:
   for every registry workload, {unpruned, cache-only, prune-only, both} x
   {jobs=1, jobs=4, distribute=2} all reach the same canonical report
   (finding error values and signatures; unpruned configurations also agree
   exactly on interleaving and coverage counters, and every pruned
   configuration agrees with every other pruned configuration on how much
   was cut).

   Alongside the matrix: unit tests of the prefix cache (a warm
   re-verification is decision-for-decision identical to a cold one, a
   tiny-budget cache evicts without losing correctness, the sidecar is
   label-guarded, faulted explorations are cache-transparent) and QCheck
   properties of the independence layer (commuting decisions share a plan
   normal form and force identically; an epoch that is not structurally
   equal to a sleeping epoch is never suppressed). *)

module Explorer = Dampi.Explorer
module Report = Dampi.Report
module State = Dampi.State
module Decisions = Dampi.Decisions
module Epoch = Dampi.Epoch
module Prune = Dampi.Prune
module Prefix_cache = Dampi.Prefix_cache
module Checkpoint = Dampi.Checkpoint
module Coordinator = Dampi.Coordinator
module Remote_worker = Dampi.Remote_worker
module Wire = Dampi.Wire
module Payload = Mpi.Payload

(* ---- a workload where pruning actually fires ----

   Two wildcard receivers with disjoint sender pools: every epoch owned by
   rank 0 has footprint within {0,2,3,4}, every epoch owned by rank 1
   within {1,5,6,7}, so cross-side forks commute and sleep sets cut the
   product space. (The stock patterns never prune: all their wildcard
   epochs share an owner or a rank, which is exactly why this program is
   here.) *)
module Twin_servers (M : Mpi.Mpi_intf.MPI_CORE) = struct
  let main () =
    let world = M.comm_world in
    match M.rank world with
    | (0 | 1) as r ->
        for _ = 1 to 3 do
          let x, _ = M.recv ~src:M.any_source world in
          if Payload.to_int x < 0 then failwith "twin: negative payload"
        done;
        ignore r
    | r -> M.send ~dest:(if r <= 4 then 0 else 1) world (Payload.int r)
end

let twin_servers : Mpi.Mpi_intf.program = (module Twin_servers)

(* The registry: the usual suspects (where pruning must be a sound no-op)
   plus [twin] (where it must actually cut). *)
let registry : (string * int * State.config * (unit -> Mpi.Mpi_intf.program)) list
    =
  let default = State.default_config in
  let k0 = State.make_config ~mixing_bound:0 () in
  [
    ("fig3", 3, default, fun () -> Workloads.Patterns.fig3);
    ("fig4", 4, default, fun () -> Workloads.Patterns.fig4);
    ("deadlock", 2, default, fun () -> Workloads.Patterns.head_to_head);
    ( "matmult",
      6,
      default,
      fun () ->
        Workloads.Matmult.program
          ~params:
            { Workloads.Matmult.default_params with n = 6; rows_per_task = 1 }
          () );
    ("adlb/k0", 6, k0, fun () -> Workloads.Adlb.program ());
    ("twin", 8, default, fun () -> twin_servers);
  ]

(* ---- the configuration matrix ---- *)

type mode = { m_name : string; m_prune : bool; m_cache : int option }

let modes =
  [
    { m_name = "unpruned"; m_prune = false; m_cache = None };
    { m_name = "cache"; m_prune = false; m_cache = Some (1 lsl 20) };
    { m_name = "prune"; m_prune = true; m_cache = None };
    { m_name = "both"; m_prune = true; m_cache = Some (1 lsl 20) };
  ]

let config_of ~state_config ~jobs (m : mode) =
  {
    Explorer.default_config with
    state_config;
    jobs;
    prune = m.m_prune;
    prefix_cache = m.m_cache;
  }

let verify_local ~np ~state_config ~jobs m build =
  Explorer.verify ~config:(config_of ~state_config ~jobs m) ~np (build ())

(* distribute=2: in-process worker domains speaking the real wire protocol
   over socketpairs, as in test_distributed — the worker-side expansion
   must agree with the coordinator on the mode's prune flag. *)
let verify_distributed ~name ~np ~state_config m build =
  let resolve (job : Wire.job) =
    if job.Wire.workload <> name then
      Error (Printf.sprintf "unknown workload %S" job.Wire.workload)
    else
      Ok
        {
          Remote_worker.np;
          runner =
            Explorer.dampi_runner
              { Explorer.default_config with state_config }
              ~np (build ());
          rb = Explorer.default_robustness;
          prune = m.m_prune;
        }
  in
  let workers =
    List.init 2 (fun _ ->
        let c, w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let d =
          Domain.spawn (fun () -> ignore (Remote_worker.serve ~resolve w))
        in
        (c, d))
  in
  let setup =
    {
      Coordinator.attach = Coordinator.Fds (List.map fst workers);
      job = { Wire.workload = name; np; params = [] };
      lease_size = 2;
      heartbeat_timeout = Coordinator.default_heartbeat_timeout;
      join_timeout = Coordinator.default_join_timeout;
      rejoin_grace = 0.05;
      auth = None;
      net_fault = None;
      outq_budget = Coordinator.default_outq_budget;
    }
  in
  let r =
    Explorer.verify
      ~config:(config_of ~state_config ~jobs:1 m)
      ~distribute:setup ~np (build ())
  in
  List.iter (fun (_, d) -> Domain.join d) workers;
  r

(* The canonical content of a report: the sorted structural error values
   (NOT the reproduction schedules — pruning may legitimately discover a
   finding along a different minimal schedule, since some schedules are
   proven-equivalent and never replayed). *)
let errors_of (r : Report.t) =
  List.sort compare
    (List.map (fun (f : Report.finding) -> f.Report.error) r.Report.findings)

let signatures (r : Report.t) =
  List.sort_uniq compare
    (List.map
       (fun (f : Report.finding) -> Report.error_signature f.Report.error)
       r.Report.findings)

let check_matrix ((name, np, state_config, build) : _ * int * State.config * _)
    () =
  let baseline = verify_local ~np ~state_config ~jobs:1 (List.hd modes) build in
  let pruned_shape = ref None in
  List.iter
    (fun m ->
      List.iter
        (fun (backend, run) ->
          let label = Printf.sprintf "%s [%s/%s]" name m.m_name backend in
          let r : Report.t = run () in
          Alcotest.(check (list string))
            (label ^ ": no harness failures")
            []
            (List.map
               (fun (h : Report.harness_failure) -> h.Report.hf_message)
               r.Report.harness_failures);
          Alcotest.(check bool)
            (label ^ ": same finding error values")
            true
            (errors_of baseline = errors_of r);
          Alcotest.(check (list string))
            (label ^ ": same finding signatures")
            (signatures baseline) (signatures r);
          if not m.m_prune then begin
            (* No pruning: the walk is the same walk, whatever served it. *)
            Alcotest.(check int)
              (label ^ ": same interleaving count")
              baseline.Report.interleavings r.Report.interleavings;
            Alcotest.(check int)
              (label ^ ": same wildcards analyzed")
              baseline.Report.wildcards_analyzed r.Report.wildcards_analyzed;
            Alcotest.(check int)
              (label ^ ": same bounded epochs")
              baseline.Report.bounded_epochs r.Report.bounded_epochs;
            Alcotest.(check int) (label ^ ": nothing pruned") 0 r.Report.runs_pruned
          end
          else begin
            (* Pruning decisions travel with the items (sleep sets), so
               every pruned configuration cuts the tree identically. *)
            Alcotest.(check bool)
              (label ^ ": explores no more than unpruned")
              true
              (r.Report.interleavings <= baseline.Report.interleavings);
            match !pruned_shape with
            | None ->
                pruned_shape :=
                  Some (r.Report.interleavings, r.Report.runs_pruned)
            | Some (runs, pruned) ->
                Alcotest.(check int)
                  (label ^ ": same pruned interleaving count")
                  runs r.Report.interleavings;
                Alcotest.(check int)
                  (label ^ ": same pruned-run count")
                  pruned r.Report.runs_pruned
          end)
        [
          ("jobs=1", fun () -> verify_local ~np ~state_config ~jobs:1 m build);
          ("jobs=4", fun () -> verify_local ~np ~state_config ~jobs:4 m build);
          ( "distribute=2",
            fun () -> verify_distributed ~name ~np ~state_config m build );
        ])
    modes

(* [twin] exists to prove the cut is real, not just sound. *)
let test_twin_actually_prunes () =
  let _, np, state_config, build =
    List.find (fun (n, _, _, _) -> n = "twin") registry
  in
  let base = verify_local ~np ~state_config ~jobs:1 (List.hd modes) build in
  let pruned =
    verify_local ~np ~state_config ~jobs:1
      { m_name = "prune"; m_prune = true; m_cache = None }
      build
  in
  Alcotest.(check bool) "schedules were pruned" true (pruned.Report.runs_pruned > 0);
  Alcotest.(check bool)
    "fewer replays executed" true
    (pruned.Report.interleavings < base.Report.interleavings)

(* ---- prefix-cache behavior ---- *)

let with_temp_checkpoint f =
  let path = Filename.temp_file "dampi-test-pruning" ".ck" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".cache"; path ^ ".tmp"; path ^ ".cache.tmp" ])
    (fun () -> f path)

let canonical (r : Report.t) =
  ( r.Report.interleavings,
    r.Report.wildcards_analyzed,
    r.Report.bounded_epochs,
    r.Report.runs_pruned,
    r.Report.total_virtual_time,
    errors_of r )

(* A warm re-verification (every replay served from the label-matched
   sidecar) is decision-for-decision the cold run: identical canonical
   report, and exactly one cache hit per interleaving. *)
let test_warm_rerun_equals_cold () =
  let _, np, state_config, build =
    List.find (fun (n, _, _, _) -> n = "twin") registry
  in
  with_temp_checkpoint (fun path ->
      let cfg =
        {
          (config_of ~state_config ~jobs:1
             { m_name = "both"; m_prune = true; m_cache = Some (1 lsl 22) })
          with
          Explorer.robustness =
            {
              Explorer.default_robustness with
              checkpoint = Some { Explorer.path; every = 0; label = "twin" };
            };
        }
      in
      let cold = Explorer.verify ~config:cfg ~np (build ()) in
      Alcotest.(check bool)
        "sidecar written next to the checkpoint" true
        (Sys.file_exists (path ^ ".cache"));
      let warm = Explorer.verify ~config:cfg ~np (build ()) in
      Alcotest.(check bool)
        "warm re-run is canonically identical" true
        (canonical cold = canonical warm);
      Alcotest.(check int)
        "every replay was a cache hit" warm.Report.interleavings
        (Obs.Metrics.counter_value warm.Report.metrics "cache.hits");
      Alcotest.(check int)
        "no replay missed" 0
        (Obs.Metrics.counter_value warm.Report.metrics "cache.misses"))

(* A cache too small to hold the exploration must evict, not corrupt: the
   report equals the uncached one and evictions are observable. *)
let test_tiny_budget_eviction_soak () =
  let _, np, state_config, build =
    List.find (fun (n, _, _, _) -> n = "twin") registry
  in
  let bare = verify_local ~np ~state_config ~jobs:1 (List.hd modes) build in
  let tiny =
    Explorer.verify
      ~config:
        {
          (config_of ~state_config ~jobs:1 (List.hd modes)) with
          Explorer.prefix_cache = Some 512;
        }
      ~np (build ())
  in
  Alcotest.(check bool)
    "tiny-budget report equals uncached" true
    (canonical bare = canonical tiny);
  Alcotest.(check bool)
    "the budget forced evictions" true
    (Obs.Metrics.counter_value tiny.Report.metrics "cache.evictions" > 0)

(* Fault injection with the cache on: transients absorbed by retries leave
   no trace, cached or not (the soak's DAMPI_FAULT_SEED contract). *)
let test_fault_soak_with_cache () =
  let seed =
    match Option.bind (Sys.getenv_opt "DAMPI_FAULT_SEED") int_of_string_opt with
    | Some n when n <> 0 -> n
    | _ -> 23
  in
  let _, np, state_config, build =
    List.find (fun (n, _, _, _) -> n = "adlb/k0") registry
  in
  let rb =
    {
      Explorer.default_robustness with
      fault =
        Some
          { Mpi.Fault.inert with Mpi.Fault.seed; sendfail_prob = 0.02 };
      max_retries = 6;
    }
  in
  let run cache =
    Explorer.verify
      ~config:
        {
          (config_of ~state_config ~jobs:1 (List.hd modes)) with
          Explorer.prefix_cache = cache;
          robustness = rb;
        }
      ~np (build ())
  in
  let bare = run None in
  let cached = run (Some (1 lsl 22)) in
  Alcotest.(check bool)
    "faulted exploration is cache-transparent" true
    (canonical bare = canonical cached)

(* The sidecar is label-guarded: a cache saved for one workload must not
   warm another (schedule keys carry no workload identity). *)
let test_sidecar_label_guard () =
  with_temp_checkpoint (fun path ->
      let entry =
        { Prefix_cache.vtime = 1.5; wildcards = 2; errors = []; epochs = [] }
      in
      let d =
        {
          Decisions.owner = 1;
          epoch_id = 0;
          src = 2;
          kind = Epoch.Wildcard_recv;
        }
      in
      let a = Prefix_cache.create ~label:"twin np=8" ~budget_bytes:4096 () in
      Prefix_cache.add a [ d ] entry;
      (match Prefix_cache.save a path with
      | Checkpoint.Written -> ()
      | Checkpoint.Degraded msg -> Alcotest.failf "cache save degraded: %s" msg);
      let b = Prefix_cache.create ~label:"adlb np=6" ~budget_bytes:4096 () in
      (match Prefix_cache.load b path with
      | Error msg ->
          Alcotest.(check bool)
            "mismatch message names the label" true
            (String.length msg > 0)
      | Ok () -> Alcotest.fail "foreign-label sidecar was accepted");
      Alcotest.(check bool)
        "nothing was warmed" true
        (Prefix_cache.find b [ d ] = None);
      let c = Prefix_cache.create ~label:"twin np=8" ~budget_bytes:4096 () in
      (match Prefix_cache.load c path with
      | Ok () -> ()
      | Error msg -> Alcotest.fail ("matching label refused: " ^ msg));
      match Prefix_cache.find c [ d ] with
      | Some e ->
          Alcotest.(check (float 0.0)) "artifact round-trips" 1.5 e.Prefix_cache.vtime
      | None -> Alcotest.fail "matching-label sidecar did not warm")

(* LRU mechanics, directly: recency decides the victim, and deepest_prefix
   reports the longest cached prefix. *)
let test_lru_and_deepest_prefix () =
  let d i =
    { Decisions.owner = 0; epoch_id = i; src = 1; kind = Epoch.Wildcard_recv }
  in
  let entry =
    { Prefix_cache.vtime = 0.0; wildcards = 0; errors = []; epochs = [] }
  in
  let schedule n = List.init n d in
  let cost =
    (* one entry's serialized footprint, measured via a throwaway cache *)
    let probe = Prefix_cache.create ~budget_bytes:max_int () in
    Prefix_cache.add probe (schedule 1) entry;
    let _, _, bytes, _ = Prefix_cache.stats probe in
    bytes
  in
  let t = Prefix_cache.create ~budget_bytes:(2 * cost + cost) () in
  Prefix_cache.add t (schedule 1) entry;
  Prefix_cache.add t (schedule 2) entry;
  Alcotest.(check int) "deepest prefix of [d0;d1;d2]" 2
    (Prefix_cache.deepest_prefix t (schedule 3));
  (* Touch the older entry, then overflow: the untouched one is evicted. *)
  ignore (Prefix_cache.find t (schedule 1));
  Prefix_cache.add t (schedule 3) entry;
  Alcotest.(check bool) "recently-used survives" true
    (Prefix_cache.find t (schedule 1) <> None);
  Alcotest.(check bool) "least-recently-used evicted" true
    (Prefix_cache.find t (schedule 2) = None);
  let _, _, _, evictions = Prefix_cache.stats t in
  Alcotest.(check bool) "eviction counted" true (evictions >= 1)

(* ---- QCheck: the independence layer ---- *)

let gen_decision =
  QCheck.Gen.(
    map
      (fun (owner, epoch_id, src, k) ->
        {
          Decisions.owner;
          epoch_id;
          src;
          kind = (if k then Epoch.Wildcard_recv else Epoch.Wildcard_probe);
        })
      (quad (0 -- 4) (0 -- 6) (0 -- 4) bool))

let gen_summary =
  QCheck.Gen.(
    map
      (fun ((owner, id, k, ctx), (tag, matched, alts, expandable)) ->
        {
          Epoch.s_owner = owner;
          s_id = id;
          s_kind = (if k then Epoch.Wildcard_recv else Epoch.Wildcard_probe);
          s_ctx = ctx;
          s_tag = tag;
          s_matched = matched;
          s_alternatives = List.sort_uniq compare alts;
          s_expandable = expandable;
        })
      (pair
         (quad (0 -- 7) (0 -- 99) bool (0 -- 3))
         (quad (int_range (-1) 9) (0 -- 7) (list_size (0 -- 3) (0 -- 7)) bool)))

let np_for decisions =
  1 + List.fold_left (fun a (d : Decisions.decision) -> max a (max d.Decisions.owner d.Decisions.src)) 0 decisions

(* Commuting decisions are order-irrelevant: any adjacent swap of a
   commuting pair leaves the plan's normal form AND its forcing behavior
   (forced_src over every key it mentions) unchanged. *)
let prop_commuting_swaps_share_normal_form =
  QCheck.Test.make ~count:500
    ~name:"adjacent commuting swap: same normal form, same forcing"
    (QCheck.make
       QCheck.Gen.(
         pair (list_size (0 -- 6) gen_decision)
           (pair gen_decision gen_decision)))
    (fun (rest, (a, b)) ->
      QCheck.assume (Decisions.commutes a b);
      let l1 = (a :: b :: rest) and l2 = (b :: a :: rest) in
      let np = np_for l1 in
      let p1 = Decisions.of_decisions ~np l1
      and p2 = Decisions.of_decisions ~np l2 in
      Decisions.normal_form p1 = Decisions.normal_form p2
      && List.for_all
           (fun (d : Decisions.decision) ->
             Decisions.forced_src p1 ~owner:d.Decisions.owner
               ~epoch_id:d.Decisions.epoch_id ~kind:d.Decisions.kind
             = Decisions.forced_src p2 ~owner:d.Decisions.owner
                 ~epoch_id:d.Decisions.epoch_id ~kind:d.Decisions.kind)
           l1)

(* Decisions on the same (owner, epoch) key never commute — they conflict
   by construction (the later one wins the forced source). *)
let prop_same_key_never_commutes =
  QCheck.Test.make ~count:500 ~name:"same (owner, epoch) key never commutes"
    (QCheck.make QCheck.Gen.(pair gen_decision (pair (0 -- 4) bool)))
    (fun (a, (src, k)) ->
      let b =
        {
          a with
          Decisions.src;
          kind = (if k then Epoch.Wildcard_recv else Epoch.Wildcard_probe);
        }
      in
      not (Decisions.commutes a b))

(* An epoch that is not structurally equal to a sleeping epoch is never
   suppressed: sleep sets only ever cut exact rediscoveries, so anything
   observed differently is explored in full. *)
let prop_non_equal_never_pruned =
  QCheck.Test.make ~count:1000
    ~name:"expansion never suppresses an epoch that escaped its sleep set"
    (QCheck.make QCheck.Gen.(pair gen_summary (list_size (0 -- 4) gen_summary)))
    (fun (e, sleep) ->
      let exp =
        Prune.expand ~prune:true ~sleep ~plan_decisions:[] [ e ]
      in
      if List.exists (fun s -> Epoch.summary_equal s e) sleep then true
      else exp.Prune.suppressed = 0)

(* footprint_disjoint is symmetric and demands distinct owners — an epoch
   never commutes with itself, so self-suppression is impossible. *)
let prop_footprint_disjoint_sane =
  QCheck.Test.make ~count:1000
    ~name:"footprint_disjoint: symmetric, never reflexive"
    (QCheck.make QCheck.Gen.(pair gen_summary gen_summary))
    (fun (a, b) ->
      Prune.footprint_disjoint a b = Prune.footprint_disjoint b a
      && (not (Prune.footprint_disjoint a a))
      && ((not (Prune.footprint_disjoint a b)) || a.Epoch.s_owner <> b.Epoch.s_owner))

(* ---- report merging: signature collisions keep both findings ---- *)

let test_merge_signature_collision () =
  (* Two structurally different errors whose signatures collide: Comm_leak
     label lists whose ", "-joined renderings are equal. A signature-keyed
     table would keep whichever merged second; the structural merge keeps
     both. *)
  let e1 = Report.Comm_leak { pid = 0; labels = [ "x, y" ] }
  and e2 = Report.Comm_leak { pid = 0; labels = [ "x"; "y" ] } in
  Alcotest.(check string)
    "the signatures do collide"
    (Report.error_signature e1) (Report.error_signature e2);
  let f error schedule_src =
    {
      Report.error;
      run_index = 1;
      schedule =
        [
          {
            Decisions.owner = 0;
            epoch_id = 0;
            src = schedule_src;
            kind = Epoch.Wildcard_recv;
          };
        ];
    }
  in
  let t = Report.Merge.create () in
  Report.Merge.add t (f e1 1);
  Report.Merge.add t (f e2 2);
  (* And a duplicate of e1 along a canonically larger schedule: the
     smaller reproduction must win, order-independently. *)
  Report.Merge.add t (f e1 3);
  let out = Report.Merge.to_list t in
  Alcotest.(check int) "both structural errors survive" 2 (List.length out);
  Alcotest.(check bool)
    "errors are the two distinct values" true
    (List.sort compare (List.map (fun (g : Report.finding) -> g.Report.error) out)
    = List.sort compare [ e1; e2 ]);
  List.iter
    (fun (g : Report.finding) ->
      if g.Report.error = e1 then
        Alcotest.(check int)
          "canonically smallest schedule wins" 1
          (match g.Report.schedule with
          | [ d ] -> d.Decisions.src
          | _ -> -1))
    out

let () =
  Alcotest.run "pruning"
    ([
       ( "equivalence-matrix",
         List.map
           (fun ((name, _, _, _) as case) ->
             Alcotest.test_case name `Quick (check_matrix case))
           registry );
       ( "pruning-bites",
         [ Alcotest.test_case "twin workload prunes" `Quick test_twin_actually_prunes ] );
       ( "prefix-cache",
         [
           Alcotest.test_case "warm re-run equals cold" `Quick
             test_warm_rerun_equals_cold;
           Alcotest.test_case "tiny-budget eviction soak" `Quick
             test_tiny_budget_eviction_soak;
           Alcotest.test_case "fault soak with cache on" `Quick
             test_fault_soak_with_cache;
           Alcotest.test_case "sidecar label guard" `Quick
             test_sidecar_label_guard;
           Alcotest.test_case "LRU recency and deepest prefix" `Quick
             test_lru_and_deepest_prefix;
         ] );
       ( "independence-properties",
         [
           QCheck_alcotest.to_alcotest prop_commuting_swaps_share_normal_form;
           QCheck_alcotest.to_alcotest prop_same_key_never_commutes;
           QCheck_alcotest.to_alcotest prop_non_equal_never_pruned;
           QCheck_alcotest.to_alcotest prop_footprint_disjoint_sane;
         ] );
       ( "report-merge",
         [
           Alcotest.test_case "signature collision keeps both findings" `Quick
             test_merge_signature_collision;
         ] );
     ]
    : unit Alcotest.test list)
