(* Unit tests for the domain-parallel work queue behind the explorer:
   ordering guarantees, budget enforcement under contention, cooperative
   cancellation, and the zero-frame fast path. *)

module Scheduler = Dampi.Scheduler

(* Run a scheduler with one worker and record execution order. [children]
   maps an item to its follow-on items. *)
let trace_order ~order ?budget seed children =
  let sched = Scheduler.create ~order ~jobs:1 ?budget () in
  Scheduler.push_batch sched seed;
  let log = ref [] in
  Scheduler.run sched (fun ~worker:_ x ->
      log := x :: !log;
      children x);
  List.rev !log

let test_lifo_batch_order () =
  (* The first element of a pushed batch pops first; a popped item's
     children run before its batch siblings — depth-first order. *)
  let children = function 1 -> [ 10; 11 ] | 10 -> [ 100 ] | _ -> [] in
  Alcotest.(check (list int))
    "depth-first"
    [ 1; 10; 100; 11; 2; 3 ]
    (trace_order ~order:Scheduler.Lifo [ 1; 2; 3 ] children)

let test_fifo_batch_order () =
  (* Under FIFO, children queue behind the remaining seed — breadth-first. *)
  let children = function 1 -> [ 10; 11 ] | 10 -> [ 100 ] | _ -> [] in
  Alcotest.(check (list int))
    "breadth-first"
    [ 1; 2; 3; 10; 11; 100 ]
    (trace_order ~order:Scheduler.Fifo [ 1; 2; 3 ] children)

let test_lifo_push_is_a_stack () =
  let sched = Scheduler.create ~order:Scheduler.Lifo ~jobs:1 () in
  Scheduler.push sched 1;
  Scheduler.push sched 2;
  Scheduler.push sched 3;
  let log = ref [] in
  Scheduler.run sched (fun ~worker:_ x ->
      log := x :: !log;
      []);
  Alcotest.(check (list int)) "stack order" [ 3; 2; 1 ] (List.rev !log)

let test_budget_sequential () =
  (* A self-replicating workload: without the budget it would never end. *)
  let executed =
    trace_order ~order:Scheduler.Lifo ~budget:7 [ 0 ] (fun x -> [ x + 1 ])
  in
  Alcotest.(check (list int)) "exactly budget items"
    [ 0; 1; 2; 3; 4; 5; 6 ] executed

let test_budget_under_contention () =
  (* Four domains racing over a replicating queue: the claim counter is the
     only admission gate, so exactly [budget] items may ever run. *)
  let budget = 50 in
  let sched = Scheduler.create ~order:Scheduler.Lifo ~jobs:4 ~budget () in
  Scheduler.push_batch sched [ 0; 1; 2; 3 ];
  let ran = Atomic.make 0 in
  Scheduler.run sched (fun ~worker:_ x ->
      Atomic.incr ran;
      [ (x * 2) + 1; (x * 2) + 2 ]);
  Alcotest.(check int) "claimed = budget" budget (Scheduler.executed sched);
  Alcotest.(check int) "ran = budget" budget (Atomic.get ran);
  let per_worker =
    List.fold_left
      (fun acc (ws : Scheduler.worker_stats) -> acc + ws.Scheduler.items_run)
      0 (Scheduler.stats sched)
  in
  Alcotest.(check int) "worker counters sum to budget" budget per_worker

let test_cancel_drops_queued_work () =
  let sched = Scheduler.create ~order:Scheduler.Lifo ~jobs:1 () in
  Scheduler.push_batch sched [ 1; 2; 3; 4; 5 ];
  let log = ref [] in
  Scheduler.run sched (fun ~worker:_ x ->
      log := x :: !log;
      if x = 2 then Scheduler.cancel sched;
      if x < 100 then [ x + 100 ] else []);
  Alcotest.(check (list int)) "stops after the cancelling item" [ 1; 101; 2 ]
    (List.rev !log);
  Alcotest.(check bool) "cancelled" true (Scheduler.cancelled sched);
  Alcotest.(check bool)
    "queued work dropped, not run"
    true
    (Scheduler.pending sched > 0)

let test_cancel_under_contention () =
  (* Cooperative cancellation with racing workers: whatever was in flight
     finishes, nothing is claimed afterwards, and the queue keeps the
     abandoned work. *)
  let sched = Scheduler.create ~order:Scheduler.Fifo ~jobs:4 () in
  Scheduler.push_batch sched (List.init 64 Fun.id);
  let ran = Atomic.make 0 in
  Scheduler.run sched (fun ~worker:_ x ->
      Atomic.incr ran;
      if x = 0 then Scheduler.cancel sched;
      []);
  Alcotest.(check bool) "cancelled" true (Scheduler.cancelled sched);
  Alcotest.(check bool)
    "not everything ran"
    true
    (Atomic.get ran < 64);
  Alcotest.(check int) "ran + pending = pushed" 64
    (Atomic.get ran + Scheduler.pending sched)

let test_zero_frame_fast_path () =
  (* A deterministic program produces no fork frames: run must return
     immediately, for any worker count, without spawning domains. *)
  List.iter
    (fun jobs ->
      let sched = Scheduler.create ~jobs () in
      let ran = Atomic.make 0 in
      Scheduler.run sched (fun ~worker:_ _ ->
          Atomic.incr ran;
          []);
      Alcotest.(check int)
        (Printf.sprintf "nothing ran (jobs=%d)" jobs)
        0 (Atomic.get ran);
      Alcotest.(check int)
        (Printf.sprintf "nothing executed (jobs=%d)" jobs)
        0 (Scheduler.executed sched))
    [ 1; 4 ]

let test_parallel_drains_everything () =
  (* No budget, no cancellation: every item (including discovered children)
     must run exactly once even with many workers. *)
  let sched = Scheduler.create ~order:Scheduler.Lifo ~jobs:4 () in
  Scheduler.push_batch sched (List.init 20 Fun.id);
  let sum = Atomic.make 0 in
  Scheduler.run sched (fun ~worker:_ x ->
      ignore (Atomic.fetch_and_add sum x);
      if x < 100 then [ x + 100 ] else []);
  (* seeds 0..19 plus one child x+100 each *)
  let expected = (190 * 2) + (20 * 100) in
  Alcotest.(check int) "all items ran once" expected (Atomic.get sum);
  Alcotest.(check int) "40 executions" 40 (Scheduler.executed sched);
  Alcotest.(check int) "queue drained" 0 (Scheduler.pending sched)

(* ---- property tests: the scheduler vs a pure-list reference ----

   The stealing-deque machinery (per-worker deques, near/far ends, the
   in-flight slot) must be observationally identical, at jobs=1, to the
   trivial model: a single list where [push_batch] prepends (Lifo) or
   appends (Fifo) and execution pops the head. Random seed batches and a
   random branching table exercise the front/back refill paths that the
   hand-written cases above miss. *)

let reference ~order ~budget seeds children =
  let enqueue queue batch =
    match order with
    | Scheduler.Lifo -> batch @ queue
    | Scheduler.Fifo -> queue @ batch
  in
  let rec go queue left acc =
    if left = 0 then List.rev acc
    else
      match queue with
      | [] -> List.rev acc
      | x :: rest -> go (enqueue rest (children x)) (left - 1) (x :: acc)
  in
  go (List.fold_left enqueue [] seeds) budget []

(* Items are digit strings in disguise: seeds are 0..9 and item [x]'s
   children are [10x+1 .. 10x+arity], so the tree is finite (depth 4) and
   every item is distinct within its seed's subtree. The arity table is the
   random part. *)
let children_of_table table x =
  if x >= 1000 then []
  else
    let arity = List.nth table (x mod List.length table) in
    List.init arity (fun i -> (x * 10) + i + 1)

let gen_case =
  QCheck.make
    ~print:(fun (seeds, table, budget) ->
      Printf.sprintf "seeds=[%s] arity=[%s] budget=%d"
        (String.concat ";"
           (List.map
              (fun b -> String.concat "," (List.map string_of_int b))
              seeds))
        (String.concat "," (List.map string_of_int table))
        budget)
    QCheck.Gen.(
      triple
        (list_size (int_range 0 4) (list_size (int_range 0 5) (int_range 0 9)))
        (list_size (int_range 1 5) (int_range 0 3))
        (int_range 0 60))

let scheduler_trace ~order ~jobs ~budget seeds children =
  let sched = Scheduler.create ~order ~jobs ~budget () in
  List.iter (Scheduler.push_batch sched) seeds;
  let log = ref [] in
  let log_m = Mutex.create () in
  Scheduler.run sched (fun ~worker:_ x ->
      Mutex.lock log_m;
      log := x :: !log;
      Mutex.unlock log_m;
      children x);
  List.rev !log

let prop_matches_reference order name =
  QCheck.Test.make ~name ~count:500 gen_case (fun (seeds, table, budget) ->
      let children = children_of_table table in
      scheduler_trace ~order ~jobs:1 ~budget seeds children
      = reference ~order ~budget seeds children)

(* With several workers the order is scheduling-dependent — and under a
   budget so is the admitted subset — but unbudgeted, the multiset of
   executed items is not: stealing must neither lose, duplicate, nor invent
   work. (Sorting both sides compares multisets.) *)
let prop_parallel_same_multiset =
  QCheck.Test.make ~name:"jobs=3 executes the same multiset" ~count:60
    gen_case (fun (seeds, table, _budget) ->
      let children = children_of_table table in
      List.sort compare
        (scheduler_trace ~order:Scheduler.Lifo ~jobs:3 ~budget:max_int seeds
           children)
      = List.sort compare
          (reference ~order:Scheduler.Lifo ~budget:max_int seeds children))

(* ---- snapshot is a consistent cut, taken mid-steal ----

   Park both workers inside their first item (one of which worker 1 can
   only have obtained by stealing: external pushes all land on worker 0's
   deque), photograph the queue from a third domain, then release. The cut
   must contain every seed exactly once — the two in-flight items included,
   their children excluded (not published yet) — which is precisely what a
   checkpoint written at that instant needs in order to resume without
   losing or duplicating subtrees. *)
let test_snapshot_mid_steal () =
  let seeds = [ 1; 2; 3; 4; 5; 6 ] in
  let children = function 1 -> [ 101; 102 ] | 2 -> [ 201 ] | _ -> [] in
  let sched = Scheduler.create ~order:Scheduler.Lifo ~jobs:2 () in
  Scheduler.push_batch sched seeds;
  let started = Atomic.make 0 in
  let release = Atomic.make false in
  let snap = Atomic.make None in
  let taker =
    Domain.spawn (fun () ->
        while Atomic.get started < 2 do
          Domain.cpu_relax ()
        done;
        Atomic.set snap (Some (Scheduler.snapshot sched));
        Atomic.set release true)
  in
  let ran = Atomic.make 0 in
  Scheduler.run sched (fun ~worker:_ x ->
      Atomic.incr started;
      while not (Atomic.get release) do
        Domain.cpu_relax ()
      done;
      Atomic.incr ran;
      children x);
  Domain.join taker;
  (match Atomic.get snap with
  | None -> Alcotest.fail "snapshot never taken"
  | Some cut ->
      Alcotest.(check (list int))
        "cut = every seed once, no unpublished children" seeds
        (List.sort compare cut));
  Alcotest.(check int) "everything ran after release" 9 (Atomic.get ran);
  let steals =
    List.fold_left
      (fun acc (ws : Scheduler.worker_stats) -> acc + ws.Scheduler.steals)
      0 (Scheduler.stats sched)
  in
  Alcotest.(check bool)
    (Printf.sprintf "worker 1 stole its first item (steals=%d)" steals)
    true (steals >= 1)

let test_run_twice_rejected () =
  let sched = Scheduler.create ~jobs:1 () in
  Scheduler.push sched 1;
  Scheduler.run sched (fun ~worker:_ _ -> []);
  Alcotest.check_raises "second run rejected"
    (Invalid_argument "Scheduler.run: already ran") (fun () ->
      Scheduler.run sched (fun ~worker:_ _ -> []))

let () =
  Alcotest.run "scheduler"
    [
      ( "ordering",
        [
          Alcotest.test_case "lifo batch is depth-first" `Quick
            test_lifo_batch_order;
          Alcotest.test_case "fifo batch is breadth-first" `Quick
            test_fifo_batch_order;
          Alcotest.test_case "lifo push is a stack" `Quick
            test_lifo_push_is_a_stack;
        ] );
      ( "budget",
        [
          Alcotest.test_case "sequential budget" `Quick test_budget_sequential;
          Alcotest.test_case "budget under contention" `Quick
            test_budget_under_contention;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "cancel drops queued work" `Quick
            test_cancel_drops_queued_work;
          Alcotest.test_case "cancel under contention" `Quick
            test_cancel_under_contention;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "zero-frame fast path" `Quick
            test_zero_frame_fast_path;
          Alcotest.test_case "parallel drain" `Quick
            test_parallel_drains_everything;
          Alcotest.test_case "run twice rejected" `Quick test_run_twice_rejected;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest
            (prop_matches_reference Scheduler.Lifo
               "jobs=1 Lifo = pure-list reference");
          QCheck_alcotest.to_alcotest
            (prop_matches_reference Scheduler.Fifo
               "jobs=1 Fifo = pure-list reference");
          QCheck_alcotest.to_alcotest prop_parallel_same_multiset;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "consistent cut mid-steal" `Quick
            test_snapshot_mid_steal;
        ] );
    ]
