(* Tests for the logical-clock algebra: Lamport soundness/incompleteness,
   vector precision, and the shared interface laws. *)

module Lamport = Clocks.Lamport
module Vector = Clocks.Vector

(* ---- Lamport ---- *)

let test_lamport_basics () =
  let c = Lamport.make ~np:4 in
  Alcotest.(check int) "zero" 0 (Lamport.scalar ~me:0 c);
  let c = Lamport.tick ~me:0 c in
  let c = Lamport.tick ~me:0 c in
  Alcotest.(check int) "two ticks" 2 (Lamport.scalar ~me:0 c);
  let merged = Lamport.merge c 7 in
  Alcotest.(check int) "merge is max" 7 (Lamport.scalar ~me:0 merged);
  Alcotest.(check int) "merge keeps larger side" 7
    (Lamport.scalar ~me:0 (Lamport.merge 7 c))

let test_lamport_is_late () =
  Alcotest.(check bool) "smaller clock is late" true
    (Lamport.is_late ~send:1 ~epoch:3);
  Alcotest.(check bool) "equal clock is not late" false
    (Lamport.is_late ~send:3 ~epoch:3);
  Alcotest.(check bool) "greater clock is not late" false
    (Lamport.is_late ~send:5 ~epoch:3)

let test_lamport_encode_roundtrip () =
  let c = Lamport.tick ~me:2 (Lamport.make ~np:8) in
  Alcotest.(check int) "roundtrip" (Lamport.scalar ~me:2 c)
    (Lamport.scalar ~me:2 (Lamport.decode ~np:8 (Lamport.encode c)))

(* ---- Vector ---- *)

let test_vector_basics () =
  let c = Vector.make ~np:3 in
  let c = Vector.tick ~me:1 c in
  let c = Vector.tick ~me:1 c in
  Alcotest.(check int) "own component" 2 (Vector.scalar ~me:1 c);
  Alcotest.(check int) "other component" 0 (Vector.scalar ~me:0 c);
  let d = Vector.tick ~me:2 (Vector.make ~np:3) in
  let m = Vector.merge c d in
  Alcotest.(check int) "merge component 1" 2 (Vector.scalar ~me:1 m);
  Alcotest.(check int) "merge component 2" 1 (Vector.scalar ~me:2 m)

let test_vector_happened_before () =
  let a = Vector.tick ~me:0 (Vector.make ~np:2) in
  (* b knows a (merged) and then ticked: a -> b *)
  let b = Vector.tick ~me:1 (Vector.merge a (Vector.make ~np:2)) in
  Alcotest.(check bool) "a before b" true (Vector.happened_before a b);
  Alcotest.(check bool) "b not before a" false (Vector.happened_before b a);
  (* concurrent events *)
  let c = Vector.tick ~me:1 (Vector.make ~np:2) in
  Alcotest.(check bool) "concurrent, not before" false
    (Vector.happened_before a c);
  Alcotest.(check bool) "concurrent, not after" false
    (Vector.happened_before c a)

let test_vector_is_late () =
  let np = 2 in
  (* Epoch event on P0. *)
  let epoch = Vector.epoch_clock ~me:0 (Vector.make ~np) in
  (* A send causally after the epoch: sender saw the epoch clock. *)
  let after = Vector.tick ~me:1 (Vector.merge epoch (Vector.make ~np)) in
  Alcotest.(check bool) "causally-after send is not late" false
    (Vector.is_late ~send:after ~epoch);
  (* A concurrent send. *)
  let conc = Vector.tick ~me:1 (Vector.make ~np) in
  Alcotest.(check bool) "concurrent send is late" true
    (Vector.is_late ~send:conc ~epoch)

(* The Fig. 4 discrimination: a concurrent send whose Lamport scalar equals
   the epoch value is missed by Lamport but caught by vector clocks. *)
let test_fig4_discrimination () =
  let np = 4 in
  (* P1's wildcard receive is its first event. *)
  let l_epoch = Clocks.Lamport.make ~np in
  let l_epoch = Clocks.Lamport.epoch_clock ~me:1 l_epoch in
  (* P2 also had a wildcard receive (tick) and then sent to P1: its send
     carries LC=1 while P1's epoch id is 0. *)
  let l_send = Clocks.Lamport.tick ~me:2 (Clocks.Lamport.make ~np) in
  Alcotest.(check bool) "lamport misses the concurrent send" false
    (Clocks.Lamport.is_late ~send:l_send ~epoch:l_epoch);
  (* Same scenario under vector clocks. *)
  let v_epoch = Vector.epoch_clock ~me:1 (Vector.make ~np) in
  let v_send = Vector.tick ~me:2 (Vector.make ~np) in
  Alcotest.(check bool) "vector catches the concurrent send" true
    (Vector.is_late ~send:v_send ~epoch:v_epoch)

(* ---- Property tests over the shared laws ---- *)

let clock_ops (type a) (module C : Clocks.Clock_intf.S with type t = a) ~np
    ops : a array =
  (* Interpret a list of (me, op) pairs as clock operations; returns the
     final per-process clocks. *)
  let clocks = Array.init np (fun _ -> C.make ~np) in
  List.iter
    (fun (me, op) ->
      let me = abs me mod np in
      match op mod 2 with
      | 0 -> clocks.(me) <- C.tick ~me clocks.(me)
      | _ ->
          let other = (me + 1) mod np in
          clocks.(me) <- C.merge clocks.(me) clocks.(other))
    ops;
  clocks

let prop_merge_monotone (module C : Clocks.Clock_intf.S) name =
  QCheck.Test.make ~name:(name ^ ": scalar never decreases") ~count:200
    QCheck.(small_list (pair small_int small_int))
    (fun ops ->
      let np = 3 in
      let clocks = Array.init np (fun _ -> C.make ~np) in
      let ok = ref true in
      List.iter
        (fun (me, op) ->
          let me = abs me mod np in
          let before = C.scalar ~me clocks.(me) in
          (match op mod 2 with
          | 0 -> clocks.(me) <- C.tick ~me clocks.(me)
          | _ ->
              let other = (me + 1) mod np in
              clocks.(me) <- C.merge clocks.(me) clocks.(other));
          if C.scalar ~me clocks.(me) < before then ok := false)
        ops;
      !ok)

let prop_encode_roundtrip (module C : Clocks.Clock_intf.S) name =
  QCheck.Test.make ~name:(name ^ ": encode/decode roundtrip") ~count:200
    QCheck.(small_list (pair small_int small_int))
    (fun ops ->
      let np = 3 in
      let clocks = clock_ops (module C) ~np ops in
      Array.for_all
        (fun c ->
          C.encode (C.decode ~np (C.encode c)) = C.encode c)
        clocks)

(* Soundness of is_late for both algebras: a send that has merged the epoch
   clock (hence is causally after) must never be judged late. *)
let prop_no_false_late (module C : Clocks.Clock_intf.S) name =
  QCheck.Test.make ~name:(name ^ ": causally-after send never late") ~count:200
    QCheck.(small_list (pair small_int small_int))
    (fun ops ->
      let np = 3 in
      let clocks = clock_ops (module C) ~np ops in
      let epoch = C.epoch_clock ~me:0 clocks.(0) in
      (* Simulate the receiver ticking then the sender learning of it. *)
      let sender = C.tick ~me:1 (C.merge clocks.(1) (C.tick ~me:0 clocks.(0))) in
      not (C.is_late ~send:sender ~epoch))

(* ---- Encoded (mutable, in-place) ops agree with the pure algebra ----

   The hot path mutates encoded clocks through [tick_into]/[merge_into]/
   [epoch_clock_into]/[is_late_enc]; the pure [tick]/[merge]/[epoch_clock]/
   [is_late] remain the reference semantics. Random op interleavings over
   random np must keep the two representations byte-identical at every
   step, including every late-verdict an epoch could render. *)
let prop_encoded_matches_pure (module C : Clocks.Clock_intf.S) name =
  QCheck.Test.make
    ~name:(name ^ ": encoded ops match pure ops")
    ~count:300
    QCheck.(pair (int_range 1 5) (small_list (pair small_int small_int)))
    (fun (np, ops) ->
      let pure = Array.init np (fun _ -> C.make ~np) in
      let enc = Array.init np (fun _ -> C.make_enc ~np) in
      let ok = ref true in
      let check_rank me =
        if C.encode pure.(me) <> enc.(me) then ok := false;
        if C.scalar ~me pure.(me) <> C.scalar_enc ~me enc.(me) then
          ok := false
      in
      List.iter
        (fun (who, op) ->
          let me = abs who mod np in
          (match abs op mod 3 with
          | 0 ->
              pure.(me) <- C.tick ~me pure.(me);
              C.tick_into ~me enc.(me)
          | 1 ->
              let other = (me + 1) mod np in
              (* [merge_into] forbids aliasing, so skip self-merges (np=1). *)
              if other <> me then begin
                pure.(me) <- C.merge pure.(me) pure.(other);
                C.merge_into ~into:enc.(me) enc.(other)
              end
          | _ ->
              (* Epoch the way [State.record_epoch] does: derive the epoch
                 clock from the pre-state, then compare late verdicts
                 against every rank's current clock. *)
              let epoch_pure = C.epoch_clock ~me pure.(me) in
              let epoch_enc = Array.make (C.width ~np) 0 in
              C.epoch_clock_into ~me ~pre:enc.(me) ~into:epoch_enc;
              if C.encode epoch_pure <> epoch_enc then ok := false;
              Array.iteri
                (fun r c ->
                  if
                    C.is_late ~send:c ~epoch:epoch_pure
                    <> C.is_late_enc ~send:enc.(r) ~epoch:epoch_enc
                  then ok := false)
                pure);
          check_rank me)
        ops;
      for r = 0 to np - 1 do
        check_rank r
      done;
      !ok)

let lamport_mod = (module Clocks.Lamport : Clocks.Clock_intf.S)
let vector_mod = (module Clocks.Vector : Clocks.Clock_intf.S)

(* The decode/apply/encode adapter used as the differential reference for
   the runtime equivalence tests must itself satisfy the same laws. *)
module Ref_lamport = Clocks.Reference.Make (Clocks.Lamport)
module Ref_vector = Clocks.Reference.Make (Clocks.Vector)

let ref_lamport_mod = (module Ref_lamport : Clocks.Clock_intf.S)
let ref_vector_mod = (module Ref_vector : Clocks.Clock_intf.S)

let () =
  Alcotest.run "clocks"
    [
      ( "lamport",
        [
          Alcotest.test_case "tick / merge" `Quick test_lamport_basics;
          Alcotest.test_case "is_late" `Quick test_lamport_is_late;
          Alcotest.test_case "encode roundtrip" `Quick
            test_lamport_encode_roundtrip;
        ] );
      ( "vector",
        [
          Alcotest.test_case "tick / merge" `Quick test_vector_basics;
          Alcotest.test_case "happened_before" `Quick
            test_vector_happened_before;
          Alcotest.test_case "is_late" `Quick test_vector_is_late;
          Alcotest.test_case "fig4 discrimination" `Quick
            test_fig4_discrimination;
        ] );
      ( "laws",
        [
          QCheck_alcotest.to_alcotest (prop_merge_monotone lamport_mod "lamport");
          QCheck_alcotest.to_alcotest (prop_merge_monotone vector_mod "vector");
          QCheck_alcotest.to_alcotest (prop_encode_roundtrip lamport_mod "lamport");
          QCheck_alcotest.to_alcotest (prop_encode_roundtrip vector_mod "vector");
          QCheck_alcotest.to_alcotest (prop_no_false_late lamport_mod "lamport");
          QCheck_alcotest.to_alcotest (prop_no_false_late vector_mod "vector");
        ] );
      ( "encoded-equivalence",
        [
          QCheck_alcotest.to_alcotest
            (prop_encoded_matches_pure lamport_mod "lamport");
          QCheck_alcotest.to_alcotest
            (prop_encoded_matches_pure vector_mod "vector");
          QCheck_alcotest.to_alcotest
            (prop_encoded_matches_pure ref_lamport_mod "reference(lamport)");
          QCheck_alcotest.to_alcotest
            (prop_encoded_matches_pure ref_vector_mod "reference(vector)");
        ] );
    ]
