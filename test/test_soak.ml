(* Randomized soak test: generate deadlock-free-by-construction random MPI
   programs, push them through full DAMPI verification, and check the
   verifier's own invariants.

   Construction: draw a global sequence of events (sends, wildcard
   receives, barriers). Each rank executes its projection in global order;
   every receive's matching send is strictly earlier in the global order,
   and every receive is a wildcard on a common tag. Then:

   - any matching order can complete (counting argument), so {e every}
     explored interleaving must finish — no deadlock, no crash;
   - verification must be deterministic: two runs agree exactly;
   - Lamport exploration is a subset of vector exploration (soundness of
     the scalar under-approximation). *)

module Explorer = Dampi.Explorer
module Report = Dampi.Report
module State = Dampi.State
module Payload = Mpi.Payload

(* DAMPI_FAULT_SEED=<nonzero> re-runs the whole soak under deterministic
   fault injection (transient send failures and rank kills, absorbed by
   retries). Every property must still hold: transients that retries
   recover leave no trace in the canonical report. Delay injection is left
   out here because it perturbs virtual time, which the determinism
   property compares exactly. *)
let fault_seed =
  match Sys.getenv_opt "DAMPI_FAULT_SEED" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n <> 0 -> Some n
      | _ -> None)
  | None -> None

let soak_robustness =
  match fault_seed with
  | None -> Explorer.default_robustness
  | Some seed ->
      {
        Explorer.default_robustness with
        fault =
          Some
            {
              Mpi.Fault.inert with
              Mpi.Fault.seed;
              sendfail_prob = 0.02;
              crash_prob = 0.01;
            };
        max_retries = 6;
      }

type event = Send of { src : int; dst : int } | Recv of { dst : int } | Barrier

(* A random deadlock-free script over [np] ranks: maintain a per-rank count
   of messages in flight to it; a Recv event for rank d is only emitted when
   pending(d) > 0. *)
let gen_script ~np ~len rng =
  let pending = Array.make np 0 in
  let events = ref [] in
  for _ = 1 to len do
    let roll = Sim.Splitmix.int rng 10 in
    if roll < 6 then begin
      let src = Sim.Splitmix.int rng np in
      let dst = (src + 1 + Sim.Splitmix.int rng (np - 1)) mod np in
      pending.(dst) <- pending.(dst) + 1;
      events := Send { src; dst } :: !events
    end
    else if roll < 9 then begin
      (* receive somewhere a message is pending *)
      let candidates =
        List.filter (fun d -> pending.(d) > 0) (List.init np Fun.id)
      in
      match candidates with
      | [] -> ()
      | l ->
          let dst = List.nth l (Sim.Splitmix.int rng (List.length l)) in
          pending.(dst) <- pending.(dst) - 1;
          events := Recv { dst } :: !events
    end
    else events := Barrier :: !events
  done;
  (* Drain every remaining pending message so no run can leak requests. *)
  Array.iteri
    (fun d n ->
      for _ = 1 to n do
        events := Recv { dst = d } :: !events
      done)
    pending;
  List.rev !events

(* Turn a script into a program functor. *)
let program_of_script ~np script : Mpi.Mpi_intf.program =
  (module functor (M : Mpi.Mpi_intf.MPI_CORE) ->
  struct
    let main () =
      let world = M.comm_world in
      let me = M.rank world in
      ignore np;
      List.iter
        (fun ev ->
          match ev with
          | Send { src; dst } ->
              if me = src then M.send ~dest:dst world (Payload.int src)
          | Recv { dst } ->
              if me = dst then ignore (M.recv ~src:M.any_source world)
          | Barrier -> M.barrier world)
        script
  end)

let verify_with ~clock ~np program =
  Explorer.verify
    ~config:
      {
        Explorer.default_config with
        state_config = State.make_config ~clock ();
        max_runs = 400;
        robustness = soak_robustness;
      }
    ~np program

let lamport = (module Clocks.Lamport : Clocks.Clock_intf.S)
let vector = (module Clocks.Vector : Clocks.Clock_intf.S)

let gen_case =
  QCheck.make
    ~print:(fun (seed, np, len) -> Printf.sprintf "seed=%d np=%d len=%d" seed np len)
    QCheck.Gen.(
      triple (int_bound 10_000) (int_range 2 5) (int_range 4 24))

let build (seed, np, len) =
  let rng = Sim.Splitmix.create seed in
  let script = gen_script ~np ~len rng in
  program_of_script ~np script

let prop_all_interleavings_clean =
  QCheck.Test.make ~name:"every explored interleaving finishes cleanly"
    ~count:60 gen_case
    (fun ((_, np, _) as case) ->
      let report = verify_with ~clock:lamport ~np (build case) in
      report.Report.findings = [])

let prop_verification_deterministic =
  QCheck.Test.make ~name:"verification is deterministic" ~count:40 gen_case
    (fun ((_, np, _) as case) ->
      let r1 = verify_with ~clock:lamport ~np (build case) in
      let r2 = verify_with ~clock:lamport ~np (build case) in
      r1.Report.interleavings = r2.Report.interleavings
      && r1.Report.wildcards_analyzed = r2.Report.wildcards_analyzed
      && r1.Report.first_run_makespan = r2.Report.first_run_makespan)

let prop_lamport_subset_of_vector =
  QCheck.Test.make
    ~name:"lamport explores no more than vector (soundness of the scalar)"
    ~count:40 gen_case
    (fun ((_, np, _) as case) ->
      let lam = verify_with ~clock:lamport ~np (build case) in
      let vec = verify_with ~clock:vector ~np (build case) in
      (* Vector lateness is exact; Lamport under-approximates it, so Lamport
         can only discover fewer (or equal) alternatives. Comparisons are
         only meaningful below the run cap. *)
      lam.Report.interleavings > 350 || vec.Report.interleavings > 350
      || lam.Report.interleavings <= vec.Report.interleavings)

let prop_dual_clock_clean_too =
  QCheck.Test.make ~name:"dual-clock mode also verifies clean" ~count:30
    gen_case
    (fun ((_, np, _) as case) ->
      let report =
        Explorer.verify
          ~config:
            {
              Explorer.default_config with
              state_config = State.make_config ~dual_clock:true ();
              max_runs = 400;
              robustness = soak_robustness;
            }
          ~np (build case)
      in
      report.Report.findings = [])

(* Parallel-mode soak: qcheck'd random deadlock-free programs explored on 4
   domains must agree with the sequential walk — same clean verdict, same
   interleaving count. *)
let prop_parallel_agrees_with_sequential =
  QCheck.Test.make
    ~name:"parallel exploration (jobs=4) agrees with sequential" ~count:25
    gen_case
    (fun ((_, np, _) as case) ->
      let conf jobs =
        {
          Explorer.default_config with
          state_config = State.make_config ~clock:lamport ();
          max_runs = 400;
          jobs;
          robustness = soak_robustness;
        }
      in
      let seq = Explorer.verify ~config:(conf 1) ~np (build case) in
      let par = Explorer.verify ~config:(conf 4) ~np (build case) in
      (* Under a binding budget the explored subset is worker-order
         dependent; only compare exhaustive explorations. *)
      seq.Report.interleavings >= 400
      || (par.Report.findings = [] && seq.Report.findings = []
         && seq.Report.interleavings = par.Report.interleavings))

(* Repeated parallel verification of the ADLB workload: interleaving counts
   must be identical on every iteration (stateless replay has nothing to
   carry over between verifications), and no run may report a replay
   divergence — divergence would mean workers leaked state into each other's
   re-executions. *)
let parallel_adlb_soak () =
  let config =
    {
      Explorer.default_config with
      state_config = State.make_config ~mixing_bound:0 ();
      jobs = 4;
      robustness = soak_robustness;
    }
  in
  let counts =
    List.init 10 (fun _ ->
        let report =
          Explorer.verify ~config ~np:6 (Workloads.Adlb.program ())
        in
        List.iter
          (fun (f : Report.finding) ->
            match f.Report.error with
            | Report.Replay_divergence _ ->
                Alcotest.failf "replay divergence: %s"
                  (Report.error_signature f.Report.error)
            | _ -> ())
          report.Report.findings;
        report.Report.interleavings)
  in
  match counts with
  | [] -> assert false
  | first :: _ ->
      Alcotest.(check (list int))
        "stable interleaving counts across 10 iterations"
        (List.init 10 (fun _ -> first))
        counts

let prop_native_matches_self_run =
  QCheck.Test.make
    ~name:"instrumented self run preserves the native outcome" ~count:60
    gen_case
    (fun ((_, np, _) as case) ->
      let program = build case in
      let _, outcome = Mpi.Bind.exec ~np program in
      let record =
        Explorer.replay ~config:Explorer.default_config ~np program
          (Dampi.Decisions.empty ~np)
      in
      match (outcome, record.Report.outcome) with
      | Sim.Coroutine.All_finished, Sim.Coroutine.All_finished -> true
      | _ -> false)

let () =
  Alcotest.run "soak"
    [
      ( "random-programs",
        [
          QCheck_alcotest.to_alcotest prop_all_interleavings_clean;
          QCheck_alcotest.to_alcotest prop_verification_deterministic;
          QCheck_alcotest.to_alcotest prop_lamport_subset_of_vector;
          QCheck_alcotest.to_alcotest prop_dual_clock_clean_too;
          QCheck_alcotest.to_alcotest prop_native_matches_self_run;
        ] );
      ( "parallel-mode",
        [
          QCheck_alcotest.to_alcotest prop_parallel_agrees_with_sequential;
          Alcotest.test_case "adlb 10x verify --jobs 4" `Quick
            parallel_adlb_soak;
        ] );
    ]
