(* The degraded-network acceptance bar: a distributed exploration whose
   every connection is subjected to deterministic transport chaos — frame
   drops, delays, duplication, reordering, corruption, truncation,
   one-way partitions — must still produce the canonical report of the
   clean sequential walk, the same way test_pruning proved pruning sound.
   Workers are in-process domains redialling a real listening coordinator
   over a unix socket, because most fault kinds recover through the
   lose → refund → redial → re-lease path, which needs a listen socket to
   redial. A final test injects ENOSPC into checkpoint persistence and
   checks the run degrades (counted, logged) instead of crashing. *)

module Explorer = Dampi.Explorer
module Report = Dampi.Report
module State = Dampi.State
module Coordinator = Dampi.Coordinator
module Remote_worker = Dampi.Remote_worker
module Wire = Dampi.Wire
module Net = Mpi.Fault.Net

(* Two workloads: matmult is the mid-size default (24 interleavings);
   adlb/k0 (81 interleavings) backs the schedules that need a guaranteed
   supply of payload frames per connection (every one-shot injection index
   is drawn under a bounded horizon, so enough frames ⇒ the fault fires). *)
let registry : (string * int * State.config * (unit -> Mpi.Mpi_intf.program)) list
    =
  [
    ( "matmult",
      5,
      State.default_config,
      fun () ->
        Workloads.Matmult.program
          ~params:
            { Workloads.Matmult.default_params with n = 8; rows_per_task = 2 }
          () );
    ( "adlb/k0",
      6,
      State.make_config ~mixing_bound:0 (),
      fun () -> Workloads.Adlb.program () );
  ]

let find_case name = List.find (fun (n, _, _, _) -> n = name) registry

let resolve_with spec (job : Wire.job) =
  match List.find_opt (fun (n, _, _, _) -> n = job.Wire.workload) registry with
  | None -> Error (Printf.sprintf "unknown workload %S" job.Wire.workload)
  | Some (_, np, state_config, build) ->
      if job.Wire.np <> np then
        Error (Printf.sprintf "np mismatch: job says %d, have %d" job.Wire.np np)
      else
        Ok
          {
            Remote_worker.np;
            runner =
              Explorer.dampi_runner
                { Explorer.default_config with state_config }
                ~np (build ());
            rb = { Explorer.default_robustness with net_fault = spec };
            prune = false;
          }

let signatures (report : Report.t) =
  List.map
    (fun (f : Report.finding) -> Report.error_signature f.Report.error)
    report.Report.findings
  |> List.sort_uniq compare

let check_same name (seq : Report.t) (dist : Report.t) =
  Alcotest.(check (list string))
    (name ^ ": no harness failures")
    []
    (List.map
       (fun (h : Report.harness_failure) -> h.Report.hf_message)
       dist.Report.harness_failures);
  Alcotest.(check (list string))
    (name ^ ": same finding signatures")
    (signatures seq) (signatures dist);
  Alcotest.(check int)
    (name ^ ": same interleaving count")
    seq.Report.interleavings dist.Report.interleavings;
  Alcotest.(check int)
    (name ^ ": same bounded epochs")
    seq.Report.bounded_epochs dist.Report.bounded_epochs;
  Alcotest.(check (list string))
    (name ^ ": same canonical findings")
    (List.map
       (fun (f : Report.finding) ->
         Format.asprintf "%a" Report.pp_finding { f with Report.run_index = 0 })
       seq.Report.findings)
    (List.map
       (fun (f : Report.finding) ->
         Format.asprintf "%a" Report.pp_finding { f with Report.run_index = 0 })
       dist.Report.findings);
  Alcotest.(check (float 1e-9))
    (name ^ ": same total virtual time")
    seq.Report.total_virtual_time dist.Report.total_virtual_time

(* Sequential baselines, computed once and shared by every schedule. *)
let seq_report =
  let tbl = Hashtbl.create 4 in
  fun name ->
    match Hashtbl.find_opt tbl name with
    | Some r -> r
    | None ->
        let _, np, state_config, build = find_case name in
        let r =
          Explorer.verify
            ~config:{ Explorer.default_config with state_config }
            ~np (build ())
        in
        Hashtbl.add tbl name r;
        r

let counter_total (report : Report.t) pred =
  List.fold_left
    (fun acc (n, s) ->
      match s with Obs.Metrics.Counter v when pred n -> acc + v | _ -> acc)
    0 report.Report.metrics

let prefixed prefix n =
  String.length n >= String.length prefix
  && String.sub n 0 (String.length prefix) = prefix

let sock_path tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dampi-chaos-%s-%d.sock" tag (Unix.getpid ()))

(* One distributed run of [workload] with chaos [spec] on every link, both
   directions: the coordinator's setup carries the spec, and the workers'
   resolve plants the same spec in their robustness (as the CLI's job
   params would). Timeouts are short so drop/partition recovery — which
   must wait out a heartbeat silence — stays fast. *)
let chaos_dist ~tag ~workload spec =
  let _, np, state_config, build = find_case workload in
  let path = sock_path tag in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let doms = ref [] in
  let reconnect =
    { Remote_worker.max_redials = 4; backoff = 0.03; seed = spec.Net.seed }
  in
  let ready addr =
    for _ = 1 to 2 do
      doms :=
        Domain.spawn (fun () ->
            match
              Remote_worker.serve_addr ~reconnect
                ~resolve:(resolve_with (Some spec))
                (`Connect addr)
            with
            | Ok () -> ()
            | Error e -> failwith e)
        :: !doms
    done
  in
  let setup =
    {
      Coordinator.attach = Coordinator.Listen { addr = Wire.Unix_sock path; ready };
      job = { Wire.workload; np; params = [] };
      lease_size = 1;
      heartbeat_timeout = 0.4;
      join_timeout = Coordinator.default_join_timeout;
      rejoin_grace = 0.15;
      auth = None;
      net_fault = Some spec;
      outq_budget = Coordinator.default_outq_budget;
    }
  in
  let dist =
    Explorer.verify
      ~config:{ Explorer.default_config with state_config }
      ~distribute:setup ~np (build ())
  in
  List.iter Domain.join !doms;
  dist

(* The fault schedules under differential test. Probabilities are 1.0 so
   the one-shot draws always land (the workload supplies more frames than
   any horizon); seeds are arbitrary but fixed. *)
let schedules =
  [
    ("drop", "matmult", { Net.inert with seed = 11; drop = 1.0 });
    ( "delay",
      "matmult",
      { Net.inert with seed = 12; delay = 1.0; max_delay = 0.02 } );
    ("duplicate", "adlb/k0", { Net.inert with seed = 13; dup = 1.0 });
    ("reorder", "matmult", { Net.inert with seed = 14; reorder = 1.0 });
    ("corrupt", "adlb/k0", { Net.inert with seed = 15; corrupt = 1.0 });
    ("truncate", "adlb/k0", { Net.inert with seed = 16; truncate = 1.0 });
    ( "partition",
      "matmult",
      { Net.inert with seed = 17; partition = 1.0; partition_frames = 4 } );
  ]

let test_schedule (tag, workload, spec) () =
  let seq = seq_report workload in
  let dist = chaos_dist ~tag ~workload spec in
  check_same (Printf.sprintf "%s/%s" workload tag) seq dist;
  (* The schedule actually injected: at least one net_fault.<kind> counter
     ticked (coordinator-side counters land in the report's merged
     metrics; worker-side ones arrive as shipped telemetry). *)
  Alcotest.(check bool)
    (tag ^ ": chaos actually fired")
    true
    (counter_total dist (prefixed "net_fault.") > 0)

(* A mixed storm: every kind at a moderate rate on one run. No injection
   assert — with probabilistic rates a schedule may legally miss — just
   the equality bar. *)
let test_storm () =
  let spec =
    {
      Net.inert with
      seed = 18;
      drop = 0.3;
      delay = 0.5;
      max_delay = 0.02;
      dup = 0.3;
      reorder = 0.3;
      corrupt = 0.2;
      truncate = 0.2;
      partition = 0.2;
      partition_frames = 3;
    }
  in
  let seq = seq_report "matmult" in
  let dist = chaos_dist ~tag:"storm" ~workload:"matmult" spec in
  check_same "matmult/storm" seq dist

(* The duplicated-results acceptance check: under dup=1.0 at least one
   results frame reaches the coordinator twice (worker-side duplication of
   a Results frame, or a duplicated Lease making the worker replay and
   re-ship under the same lease id). The canonical-report equality above
   already proves it was counted at most once; here we pin down that the
   dedup path — not an accident of timing — discarded it. *)
let test_duplicate_counted_once () =
  let seq = seq_report "adlb/k0" in
  let spec = { Net.inert with seed = 23; dup = 1.0 } in
  let dist = chaos_dist ~tag:"dup-once" ~workload:"adlb/k0" spec in
  check_same "adlb/k0/dup-once" seq dist;
  let dedup =
    counter_total dist (fun n ->
        n = "coordinator.dup_results" || n = "coordinator.fenced")
  in
  Alcotest.(check bool)
    "a duplicated results frame was discarded by the dedup/fencing path"
    true (dedup > 0)

(* ENOSPC during checkpoint cuts: every write (periodic and final) fails
   with the injected No-space error; the run must complete with the clean
   report, count the failures, and leave no checkpoint behind. *)
let test_enospc_checkpoint () =
  let _, np, state_config, build = find_case "matmult" in
  let seq = seq_report "matmult" in
  let ck =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dampi-chaos-enospc-%d.dampi" (Unix.getpid ()))
  in
  (try Sys.remove ck with Sys_error _ -> ());
  let rb =
    {
      Explorer.default_robustness with
      net_fault = Some { Net.inert with seed = 31; write_fail = 1.0 };
      checkpoint = Some { Explorer.path = ck; every = 5; label = "chaos" };
    }
  in
  let r =
    Explorer.verify
      ~config:
        { Explorer.default_config with state_config; robustness = rb }
      ~np (build ())
  in
  check_same "matmult/enospc" seq r;
  Alcotest.(check bool)
    "run completed despite failing writes" false r.Report.interrupted;
  Alcotest.(check bool)
    "write failures were counted" true
    (counter_total r (fun n -> n = "checkpoint.write_failures") > 0);
  Alcotest.(check bool)
    "no checkpoint file materialized" false (Sys.file_exists ck);
  Alcotest.(check bool)
    "no tempfile left behind" false (Sys.file_exists (ck ^ ".tmp"))

(* Control: the same checkpoint configuration without the injected fault
   still persists — the ENOSPC test above fails for the right reason. *)
let test_checkpoint_still_works () =
  let _, np, state_config, build = find_case "matmult" in
  let ck =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dampi-chaos-ok-%d.dampi" (Unix.getpid ()))
  in
  (try Sys.remove ck with Sys_error _ -> ());
  let rb =
    {
      Explorer.default_robustness with
      checkpoint = Some { Explorer.path = ck; every = 5; label = "chaos" };
    }
  in
  let r =
    Explorer.verify
      ~config:
        { Explorer.default_config with state_config; robustness = rb }
      ~np (build ())
  in
  Alcotest.(check bool) "run completed" false r.Report.interrupted;
  Alcotest.(check bool) "checkpoint written" true (Sys.file_exists ck);
  Alcotest.(check bool)
    "no write failures counted" true
    (counter_total r (fun n -> n = "checkpoint.write_failures") = 0);
  Sys.remove ck

let () =
  Alcotest.run "chaos"
    [
      ( "differential",
        List.map
          (fun ((tag, workload, _) as s) ->
            Alcotest.test_case
              (Printf.sprintf "%s on %s" tag workload)
              `Slow (test_schedule s))
          schedules
        @ [ Alcotest.test_case "storm on matmult" `Slow test_storm ] );
      ( "exactly-once",
        [
          Alcotest.test_case "duplicated results counted once" `Slow
            test_duplicate_counted_once;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "ENOSPC degrades gracefully" `Quick
            test_enospc_checkpoint;
          Alcotest.test_case "clean checkpoint control" `Quick
            test_checkpoint_still_works;
        ] );
    ]
